// Package lp implements a small linear-programming and integer
// linear-programming solver: a two-phase primal simplex with warm
// restarts of phase 2, plus depth-first branch & bound for integrality.
//
// It replaces CPLEX 12.5 in the paper's toolchain. The ILP systems solved
// here (IPET and the Fault Miss Map objectives of Sections II.B and II.C)
// are network-flow-like with loop-bound side constraints; their LP
// relaxations are almost always integral, so branch & bound is rarely
// exercised. All variables are implicitly non-negative.
//
// # Sparse hot path and the retained dense reference
//
// IPET tableaus are extremely sparse (flow-conservation rows touch a
// handful of edge variables), and the FMM workload re-solves one
// constraint set under thousands of objectives. NewSimplex therefore
// builds the solver the hot path uses:
//
//   - after phase 1 the artificial columns — barred forever — are
//     physically compacted out of the tableau, shrinking every
//     subsequent pivot, reduction and restore;
//   - each pivot collects the nonzero columns of the (scaled) pivot row
//     once and updates only those entries of the other rows and of the
//     objective, skipping the zeros a dense sweep would multiply;
//   - pivoted rows are tracked as dirty, so CopyFrom restores a worker
//     simplex from its pristine source by copying only the rows that
//     actually changed since the last restore.
//
// None of this changes a single pivot decision: the skipped updates are
// exactly the no-op `x -= f*0` ones, so every comparison the solver
// makes sees the same values. NewReferenceSimplex retains the plain
// dense implementation (uncompacted tableau, full-row pivots, whole
// tableau restores) as an executable specification; the differential
// tests in this package and the byte-identity suites of internal/ipet
// and internal/core pit the two against each other on random systems
// and the full Mälardalen pipeline.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faultpoint"
)

// Op is a constraint comparison operator.
type Op int8

const (
	// LE is "less than or equal".
	LE Op = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the operator's symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Coef is one sparse coefficient of a constraint row.
type Coef struct {
	Var int
	Val float64
}

// Constraint is a sparse linear constraint: sum(Coefs) Op RHS.
type Constraint struct {
	Coefs []Coef
	Op    Op
	RHS   float64
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of an LP or ILP solve.
type Solution struct {
	Status Status
	// X holds the values of the structural variables (length NumVars).
	X []float64
	// Obj is the objective value at X.
	Obj float64
}

// ErrPivotLimit is returned (wrapped) by Maximize — and propagated by
// SolveILP and every caller up to the pWCET pipeline — when the simplex
// exhausts its pivot budget before proving optimality. The tableau then
// holds a feasible but possibly suboptimal basis; silently reporting it
// as the maximum would under-approximate a worst case, which for a WCET
// bound is unsound, so the condition always surfaces as an error.
var ErrPivotLimit = errors.New("lp: pivot iteration budget exhausted before optimality")

const (
	tol      = 1e-7
	pivotTol = 1e-9
)

// iterStatus is the outcome of one iterate run.
type iterStatus int8

const (
	iterOptimal iterStatus = iota
	iterUnbounded
	// iterTruncated means the pivot budget ran out: the basis is
	// feasible but optimality is unproven.
	iterTruncated
	// iterCanceled means the cancel probe fired mid-solve: the basis is
	// feasible but the solve was abandoned; the probe's error is in
	// s.cancelErr.
	iterCanceled
)

// cancelCheckMask batches cancel-probe calls: the probe runs once every
// 64 pivots (and before the first), keeping the per-pivot overhead of
// an armed probe to a masked counter test.
const cancelCheckMask = 63

// Simplex is a simplex tableau over a fixed constraint set. After
// construction (which runs phase 1), Maximize may be called repeatedly
// with different objectives; each call warm-starts from the current basis,
// which makes sweeping many objectives over one constraint set cheap
// (the FMM computes S*W objectives over a single IPET system).
type Simplex struct {
	n        int // structural variables
	ncols    int // current tableau width (artificials compacted away)
	artStart int // first artificial column (== ncols once compacted)
	rows     [][]float64
	backing  []float64 // contiguous row storage after compaction
	rhs      []float64
	basis    []int
	active   []bool
	barred   []bool // reference mode: artificial columns barred after phase 1
	feasible bool
	// truncated records a phase-1 pivot-budget exhaustion: the basis
	// cannot be trusted, so every Maximize reports ErrPivotLimit.
	truncated bool
	ref       bool // retained dense reference implementation

	// budget is the pivot budget of one iterate run. It is fixed at
	// construction from the uncompacted tableau size, so compaction
	// cannot change when truncation strikes (tests may lower it).
	budget int

	// version counts state mutations; CopyFrom uses it to detect that a
	// tracked pristine source changed under a worker's feet.
	version uint64
	// src/srcVersion/dirty track which rows diverged from the pristine
	// source the simplex was cloned from (or last fully restored to),
	// enabling the dirty-rows-only CopyFrom fast path.
	src        *Simplex
	srcVersion uint64
	dirty      []bool
	dirtyRows  []int

	// cancel, when non-nil, is probed every cancelCheckMask+1 pivots of
	// phase 2; a non-nil probe error abandons the solve and Maximize
	// returns it (wrapped). Clone does not copy the probe: worker
	// clones arm their own. Phase 1 runs at construction, before any
	// probe can be set, and is never canceled.
	cancel    func() error
	cancelErr error

	nz []int // scratch: nonzero columns of the current pivot row
}

// SetCancel installs (or, with nil, removes) the cancellation probe
// consulted between pivot batches of every subsequent Maximize. The
// probe must be cheap and must return a non-nil error exactly when the
// solve should be abandoned — typically context.Context.Err. A canceled
// Maximize leaves the tableau in a feasible (warm-startable) state; the
// next Maximize after clearing the probe proceeds normally.
func (s *Simplex) SetCancel(probe func() error) { s.cancel = probe }

// NewSimplex builds the tableau for the given constraints over n
// structural variables, runs phase 1 and compacts the artificial
// columns away. It returns an error only on malformed input;
// infeasibility is reported through Feasible.
func NewSimplex(n int, cons []Constraint) (*Simplex, error) {
	s, err := newSimplex(n, cons, false)
	if err != nil {
		return nil, err
	}
	s.compact()
	return s, nil
}

// NewReferenceSimplex builds the retained dense reference solver: the
// uncompacted tableau with full-row pivots and whole-tableau restores.
// It computes bit-for-bit the same solutions as NewSimplex (asserted by
// the differential tests) at a higher constant cost; it exists as the
// executable specification the optimized path is validated against.
func NewReferenceSimplex(n int, cons []Constraint) (*Simplex, error) {
	return newSimplex(n, cons, true)
}

func newSimplex(n int, cons []Constraint, ref bool) (*Simplex, error) {
	m := len(cons)
	nslack := 0
	nart := 0
	for _, c := range cons {
		for _, cf := range c.Coefs {
			if cf.Var < 0 || cf.Var >= n {
				return nil, fmt.Errorf("lp: variable %d out of range [0,%d)", cf.Var, n)
			}
		}
		// After sign normalization, LE rows carry a slack; GE rows a
		// surplus and an artificial; EQ rows an artificial.
		op := c.Op
		if c.RHS < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			nslack++
		case GE:
			nslack++
			nart++
		case EQ:
			nart++
		}
	}

	s := &Simplex{
		n:        n,
		ncols:    n + nslack + nart,
		artStart: n + nslack,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		active:   make([]bool, m),
		barred:   make([]bool, n+nslack+nart),
		ref:      ref,
		budget:   200*(m+n+nslack+nart) + 20000,
	}

	slackCol := n
	artCol := s.artStart
	for i, c := range cons {
		row := make([]float64, s.ncols)
		for _, cf := range c.Coefs {
			row[cf.Var] += cf.Val
		}
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			op = flip(op)
		}
		switch op {
		case LE:
			row[slackCol] = 1
			s.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		}
		s.rows[i] = row
		s.rhs[i] = rhs
		s.active[i] = true
	}

	s.phase1()
	return s, nil
}

// Feasible reports whether the constraint set admits a solution.
func (s *Simplex) Feasible() bool { return s.feasible }

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	case EQ:
		return EQ
	default:
		panic(fmt.Sprintf("lp: flip of invalid Op %d", int(op)))
	}
}

// phase1 minimizes the sum of artificial variables, then drives
// zero-level artificials out of the basis and bars artificial columns.
func (s *Simplex) phase1() {
	if s.artStart == s.ncols {
		s.feasible = true // all rows had slacks: initial basis is feasible
		return
	}
	obj := make([]float64, s.ncols)
	for j := s.artStart; j < s.ncols; j++ {
		obj[j] = -1 // maximize -(sum of artificials)
	}
	s.reduce(obj)
	if s.iterate(obj) == iterTruncated {
		s.truncated = true
	}

	// Objective value: sum of basic artificial levels.
	sum := 0.0
	for i := range s.rows {
		if s.active[i] && s.basis[i] >= s.artStart {
			sum += s.rhs[i]
		}
	}
	if sum > 1e-6 {
		s.feasible = false
		return
	}
	// Pivot remaining zero-level artificials out, or deactivate their
	// (redundant) rows.
	for i := range s.rows {
		if !s.active[i] || s.basis[i] < s.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < s.artStart; j++ {
			if math.Abs(s.rows[i][j]) > tol {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			s.active[i] = false
		}
	}
	for j := s.artStart; j < s.ncols; j++ {
		s.barred[j] = true
	}
	s.feasible = true
}

// compact physically removes the barred artificial columns from the
// tableau: after phase 1 they can never re-enter the basis (every
// active row's basic variable is structural or slack), so the columns
// are dead weight in every pivot, reduction and restore. The surviving
// columns move into one contiguous backing array, which also turns the
// whole-tableau CopyFrom into a single copy.
func (s *Simplex) compact() {
	w := s.artStart
	s.backing = make([]float64, len(s.rows)*w)
	for i, row := range s.rows {
		nr := s.backing[i*w : (i+1)*w : (i+1)*w]
		copy(nr, row[:w])
		s.rows[i] = nr
	}
	s.ncols = w
	s.barred = nil
	s.version++
	if checkEnabled {
		s.check("compact")
	}
}

// reduce zeroes the objective row's entries at basic columns.
func (s *Simplex) reduce(obj []float64) {
	for i := range s.rows {
		if !s.active[i] {
			continue
		}
		b := s.basis[i]
		if b >= len(obj) {
			continue // inactive-guarded in practice; defensive for basic artificials
		}
		if c := obj[b]; c != 0 {
			row := s.rows[i]
			for j := range obj {
				obj[j] -= c * row[j]
			}
			// obj rhs handled implicitly; objective value recomputed
			// from the basis after iterate.
		}
	}
}

// iterate runs primal simplex pivots until optimality, unboundedness or
// budget exhaustion. The objective gain of each pivot is
// reduced-cost * ratio, which is tracked to detect degenerate stalling
// and switch to Bland's anti-cycling rule.
func (s *Simplex) iterate(obj []float64) iterStatus {
	if s.ref {
		return s.referenceIterate(obj)
	}
	stall := 0
	for iter := 0; iter < s.budget; iter++ {
		if s.cancel != nil && iter&cancelCheckMask == 0 {
			if err := s.cancel(); err != nil {
				s.cancelErr = err
				return iterCanceled
			}
		}
		bland := stall > 2*(len(s.rows)+10)
		j := s.chooseEntering(obj, bland)
		if j < 0 {
			return iterOptimal
		}
		i := s.chooseLeaving(j)
		if i < 0 {
			return iterUnbounded
		}
		c := obj[j] // reduced cost of the entering variable
		s.pivot(i, j)
		// Update the objective row for the pivot: only the pivot row's
		// nonzero columns (collected by pivot) can change it.
		prow := s.rows[i]
		for _, k := range s.nz {
			obj[k] -= c * prow[k]
		}
		obj[j] = 0
		if gain := c * s.rhs[i]; gain > 1e-10 {
			stall = 0
		} else {
			stall++
		}
	}
	return iterTruncated
}

func (s *Simplex) chooseEntering(obj []float64, bland bool) int {
	best := -1
	bestVal := tol
	barred := s.barred // nil once compacted: no column is ever barred again
	for j := 0; j < s.ncols; j++ {
		if barred != nil && barred[j] {
			continue
		}
		if obj[j] > bestVal {
			if bland {
				return j
			}
			bestVal = obj[j]
			best = j
		}
	}
	return best
}

func (s *Simplex) chooseLeaving(j int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := range s.rows {
		if !s.active[i] {
			continue
		}
		a := s.rows[i][j]
		if a <= pivotTol {
			continue
		}
		ratio := s.rhs[i] / a
		if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (best < 0 || s.basis[i] < s.basis[best])) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

// pivot performs one basis exchange. It scans the pivot row once,
// scaling it and collecting its nonzero columns into s.nz; every other
// row (and the caller's objective row) is then updated only at those
// columns — the skipped entries would see `x -= f*0`, a no-op. The
// arithmetic performed is exactly the dense reference's, on exactly the
// entries that can change.
func (s *Simplex) pivot(pi, pj int) {
	if s.ref {
		s.referencePivot(pi, pj)
		return
	}
	prow := s.rows[pi]
	inv := 1 / prow[pj]
	nz := s.nz[:0]
	for j, v := range prow {
		if v == 0 {
			continue
		}
		prow[j] = v * inv
		nz = append(nz, j)
	}
	s.nz = nz
	s.rhs[pi] *= inv
	prow[pj] = 1 // avoid drift
	s.markDirty(pi)
	for i := range s.rows {
		if i == pi || !s.active[i] {
			continue
		}
		row := s.rows[i]
		f := row[pj]
		if f == 0 {
			continue
		}
		for _, j := range nz {
			row[j] -= f * prow[j]
		}
		row[pj] = 0
		s.rhs[i] -= f * s.rhs[pi]
		if s.rhs[i] < 0 && s.rhs[i] > -1e-9 {
			s.rhs[i] = 0
		}
		s.markDirty(i)
	}
	s.basis[pi] = pj
	s.version++
	if checkEnabled {
		s.check("pivot")
	}
}

// markDirty records that row i diverged from the tracked pristine
// source. Tracking starts at Clone/CopyFrom; a never-restored simplex
// (like the pristine source itself) skips the bookkeeping.
func (s *Simplex) markDirty(i int) {
	if s.dirty == nil || s.dirty[i] {
		return
	}
	s.dirty[i] = true
	s.dirtyRows = append(s.dirtyRows, i)
}

// Maximize runs phase 2 for the given objective (length = number of
// structural variables), warm-starting from the current basis. The
// returned solution aliases freshly allocated slices. If the pivot
// budget runs out before optimality is proven, Maximize returns an
// error wrapping ErrPivotLimit instead of silently reporting the
// best-so-far basis as optimal.
func (s *Simplex) Maximize(c []float64) (*Solution, error) {
	if len(c) != s.n {
		return nil, fmt.Errorf("lp: objective has %d entries, want %d", len(c), s.n)
	}
	if faultpoint.Enabled {
		// lp.slow-solve wedges the solver (chaos builds only): a sleep
		// here makes every objective slow, driving callers into their
		// soft-deadline degradation path.
		if err := faultpoint.Hit(faultpoint.SiteSlowSolve); err != nil {
			return nil, fmt.Errorf("lp: %w", err)
		}
		// lp.pivot-limit simulates budget exhaustion without burning
		// the budget, exercising the same unsound-truncation surface.
		if faultpoint.Fires(faultpoint.SitePivotLimit) {
			return nil, fmt.Errorf("lp: injected fault: %w", ErrPivotLimit)
		}
	}
	if s.truncated {
		return nil, fmt.Errorf("lp: phase 1 incomplete: %w", ErrPivotLimit)
	}
	if !s.feasible {
		return &Solution{Status: Infeasible}, nil
	}
	obj := make([]float64, s.ncols)
	copy(obj, c)
	s.reduce(obj)
	switch st := s.iterate(obj); st {
	case iterOptimal:
		// fall through to solution extraction below
	case iterUnbounded:
		return &Solution{Status: Unbounded}, nil
	case iterTruncated:
		return nil, fmt.Errorf("lp: objective over %d rows x %d cols: %w", len(s.rows), s.ncols, ErrPivotLimit)
	case iterCanceled:
		return nil, fmt.Errorf("lp: solve canceled: %w", s.cancelErr)
	default:
		panic(fmt.Sprintf("lp: unknown iterate status %d", int(st)))
	}
	x := make([]float64, s.n)
	for i := range s.rows {
		if s.active[i] && s.basis[i] < s.n {
			x[s.basis[i]] = s.rhs[i]
		}
	}
	val := 0.0
	for j, cj := range c {
		val += cj * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: val}, nil
}
