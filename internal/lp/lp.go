// Package lp implements a small linear-programming and integer
// linear-programming solver: a dense two-phase primal simplex with warm
// restarts of phase 2, plus depth-first branch & bound for integrality.
//
// It replaces CPLEX 12.5 in the paper's toolchain. The ILP systems solved
// here (IPET and the Fault Miss Map objectives of Sections II.B and II.C)
// are network-flow-like with loop-bound side constraints; their LP
// relaxations are almost always integral, so branch & bound is rarely
// exercised. All variables are implicitly non-negative.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int8

const (
	// LE is "less than or equal".
	LE Op = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the operator's symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Coef is one sparse coefficient of a constraint row.
type Coef struct {
	Var int
	Val float64
}

// Constraint is a sparse linear constraint: sum(Coefs) Op RHS.
type Constraint struct {
	Coefs []Coef
	Op    Op
	RHS   float64
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of an LP or ILP solve.
type Solution struct {
	Status Status
	// X holds the values of the structural variables (length NumVars).
	X []float64
	// Obj is the objective value at X.
	Obj float64
}

const (
	tol      = 1e-7
	pivotTol = 1e-9
)

// Simplex is a dense simplex tableau over a fixed constraint set. After
// construction (which runs phase 1), Maximize may be called repeatedly
// with different objectives; each call warm-starts from the current basis,
// which makes sweeping many objectives over one constraint set cheap
// (the FMM computes S*W objectives over a single IPET system).
type Simplex struct {
	n        int // structural variables
	ncols    int // structural + slack + artificial
	artStart int // first artificial column
	rows     [][]float64
	rhs      []float64
	basis    []int
	active   []bool
	barred   []bool // artificial columns barred after phase 1
	feasible bool
}

// NewSimplex builds the tableau for the given constraints over n
// structural variables and runs phase 1. It returns an error only on
// malformed input; infeasibility is reported through Feasible.
func NewSimplex(n int, cons []Constraint) (*Simplex, error) {
	m := len(cons)
	nslack := 0
	nart := 0
	for _, c := range cons {
		for _, cf := range c.Coefs {
			if cf.Var < 0 || cf.Var >= n {
				return nil, fmt.Errorf("lp: variable %d out of range [0,%d)", cf.Var, n)
			}
		}
		// After sign normalization, LE rows carry a slack; GE rows a
		// surplus and an artificial; EQ rows an artificial.
		op := c.Op
		if c.RHS < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			nslack++
		case GE:
			nslack++
			nart++
		case EQ:
			nart++
		}
	}

	s := &Simplex{
		n:        n,
		ncols:    n + nslack + nart,
		artStart: n + nslack,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		active:   make([]bool, m),
		barred:   make([]bool, n+nslack+nart),
	}

	slackCol := n
	artCol := s.artStart
	for i, c := range cons {
		row := make([]float64, s.ncols)
		for _, cf := range c.Coefs {
			row[cf.Var] += cf.Val
		}
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			op = flip(op)
		}
		switch op {
		case LE:
			row[slackCol] = 1
			s.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		}
		s.rows[i] = row
		s.rhs[i] = rhs
		s.active[i] = true
	}

	s.phase1()
	return s, nil
}

// Feasible reports whether the constraint set admits a solution.
func (s *Simplex) Feasible() bool { return s.feasible }

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// phase1 minimizes the sum of artificial variables, then drives
// zero-level artificials out of the basis and bars artificial columns.
func (s *Simplex) phase1() {
	if s.artStart == s.ncols {
		s.feasible = true // all rows had slacks: initial basis is feasible
		return
	}
	obj := make([]float64, s.ncols)
	for j := s.artStart; j < s.ncols; j++ {
		obj[j] = -1 // maximize -(sum of artificials)
	}
	s.reduce(obj)
	s.iterate(obj, nil)

	// Objective value: sum of basic artificial levels.
	sum := 0.0
	for i := range s.rows {
		if s.active[i] && s.basis[i] >= s.artStart {
			sum += s.rhs[i]
		}
	}
	if sum > 1e-6 {
		s.feasible = false
		return
	}
	// Pivot remaining zero-level artificials out, or deactivate their
	// (redundant) rows.
	for i := range s.rows {
		if !s.active[i] || s.basis[i] < s.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < s.artStart; j++ {
			if math.Abs(s.rows[i][j]) > tol {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			s.active[i] = false
		}
	}
	for j := s.artStart; j < s.ncols; j++ {
		s.barred[j] = true
	}
	s.feasible = true
}

// reduce zeroes the objective row's entries at basic columns.
func (s *Simplex) reduce(obj []float64) {
	for i := range s.rows {
		if !s.active[i] {
			continue
		}
		b := s.basis[i]
		if c := obj[b]; c != 0 {
			row := s.rows[i]
			for j := range obj {
				obj[j] -= c * row[j]
			}
			// obj rhs handled implicitly; objective value recomputed
			// from the basis after iterate.
		}
	}
}

// iterate runs primal simplex pivots until optimality or unboundedness.
// It returns false if the problem is unbounded in the given objective.
// extra, when non-nil, bars additional columns from entering. The
// objective gain of each pivot is reduced-cost * ratio, which is tracked
// to detect degenerate stalling and switch to Bland's anti-cycling rule.
func (s *Simplex) iterate(obj []float64, extra []bool) bool {
	maxIter := 200*(len(s.rows)+s.ncols) + 20000
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		bland := stall > 2*(len(s.rows)+10)
		j := s.chooseEntering(obj, extra, bland)
		if j < 0 {
			return true // optimal
		}
		i := s.chooseLeaving(j)
		if i < 0 {
			return false // unbounded
		}
		c := obj[j] // reduced cost of the entering variable
		s.pivot(i, j)
		// Update the objective row for the pivot.
		row := s.rows[i]
		for k := range obj {
			obj[k] -= c * row[k]
		}
		obj[j] = 0
		if gain := c * s.rhs[i]; gain > 1e-10 {
			stall = 0
		} else {
			stall++
		}
	}
	// Iteration limit: treat as optimal-so-far; callers see a feasible
	// point. This should not happen on IPET systems.
	return true
}

func (s *Simplex) chooseEntering(obj []float64, extra []bool, bland bool) int {
	best := -1
	bestVal := tol
	for j := 0; j < s.ncols; j++ {
		if s.barred[j] || (extra != nil && extra[j]) {
			continue
		}
		if obj[j] > bestVal {
			if bland {
				return j
			}
			bestVal = obj[j]
			best = j
		}
	}
	return best
}

func (s *Simplex) chooseLeaving(j int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := range s.rows {
		if !s.active[i] {
			continue
		}
		a := s.rows[i][j]
		if a <= pivotTol {
			continue
		}
		ratio := s.rhs[i] / a
		if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (best < 0 || s.basis[i] < s.basis[best])) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

func (s *Simplex) pivot(pi, pj int) {
	prow := s.rows[pi]
	p := prow[pj]
	inv := 1 / p
	for j := range prow {
		prow[j] *= inv
	}
	s.rhs[pi] *= inv
	prow[pj] = 1 // avoid drift
	for i := range s.rows {
		if i == pi || !s.active[i] {
			continue
		}
		f := s.rows[i][pj]
		if f == 0 {
			continue
		}
		row := s.rows[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[pj] = 0
		s.rhs[i] -= f * s.rhs[pi]
		if s.rhs[i] < 0 && s.rhs[i] > -1e-9 {
			s.rhs[i] = 0
		}
	}
	s.basis[pi] = pj
}

// Maximize runs phase 2 for the given objective (length = number of
// structural variables), warm-starting from the current basis. The
// returned solution aliases freshly allocated slices.
func (s *Simplex) Maximize(c []float64) (*Solution, error) {
	if len(c) != s.n {
		return nil, fmt.Errorf("lp: objective has %d entries, want %d", len(c), s.n)
	}
	if !s.feasible {
		return &Solution{Status: Infeasible}, nil
	}
	obj := make([]float64, s.ncols)
	copy(obj, c)
	s.reduce(obj)
	if !s.iterate(obj, nil) {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, s.n)
	for i := range s.rows {
		if s.active[i] && s.basis[i] < s.n {
			x[s.basis[i]] = s.rhs[i]
		}
	}
	val := 0.0
	for j, cj := range c {
		val += cj * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: val}, nil
}
