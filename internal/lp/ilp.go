package lp

import (
	"fmt"
	"math"
)

// IntTol is the tolerance within which a relaxation value is accepted as
// integral.
const IntTol = 1e-6

// maxNodes bounds the branch & bound search; IPET relaxations are almost
// always integral, so hitting the cap indicates a malformed system.
const maxNodes = 50000

// Problem is an integer linear program: maximize Obj subject to Cons,
// all variables non-negative integers.
type Problem struct {
	NumVars int
	Obj     []float64
	Cons    []Constraint
}

// SolveILP solves the problem by LP relaxation plus depth-first branch &
// bound. It returns the optimal integer solution, a Solution with status
// Infeasible/Unbounded, or an error if the node budget is exhausted.
func SolveILP(p Problem) (*Solution, error) {
	if len(p.Obj) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d entries, want %d", len(p.Obj), p.NumVars)
	}
	best := &Solution{Status: Infeasible, Obj: math.Inf(-1)}
	nodes := 0

	var rec func(extra []Constraint) error
	rec = func(extra []Constraint) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("lp: branch & bound node budget (%d) exhausted", maxNodes)
		}
		cons := p.Cons
		if len(extra) > 0 {
			cons = make([]Constraint, 0, len(p.Cons)+len(extra))
			cons = append(cons, p.Cons...)
			cons = append(cons, extra...)
		}
		sx, err := NewSimplex(p.NumVars, cons)
		if err != nil {
			return err
		}
		sol, err := sx.Maximize(p.Obj)
		if err != nil {
			return err
		}
		switch sol.Status {
		case Optimal:
			// fall through to bounding and branching below
		case Infeasible:
			return nil
		case Unbounded:
			// Unbounded relaxation at the root means the ILP is
			// unbounded as well (feasible integer points exist along
			// the ray for our all-integer-coefficient systems).
			if len(extra) == 0 {
				best = &Solution{Status: Unbounded}
				return errStop
			}
			return nil
		default:
			panic(fmt.Sprintf("lp: unknown status %v from relaxation", sol.Status))
		}
		if sol.Obj <= best.Obj+IntTol {
			return nil // pruned
		}
		frac := fractionalVar(sol.X)
		if frac < 0 {
			x := roundVector(sol.X)
			obj := 0.0
			for j, c := range p.Obj {
				obj += c * x[j]
			}
			if obj > best.Obj {
				best = &Solution{Status: Optimal, X: x, Obj: obj}
			}
			return nil
		}
		v := sol.X[frac]
		up := Constraint{Coefs: []Coef{{frac, 1}}, Op: GE, RHS: math.Ceil(v)}
		down := Constraint{Coefs: []Coef{{frac, 1}}, Op: LE, RHS: math.Floor(v)}
		// Explore the branch closest to the relaxation value first.
		first, second := up, down
		if v-math.Floor(v) < 0.5 {
			first, second = down, up
		}
		if err := rec(append(extra[:len(extra):len(extra)], first)); err != nil {
			return err
		}
		return rec(append(extra[:len(extra):len(extra)], second))
	}

	if err := rec(nil); err != nil && err != errStop {
		return nil, err
	}
	return best, nil
}

var errStop = fmt.Errorf("lp: stop")

// fractionalVar returns the index of a variable whose value is farthest
// from integral, or -1 if the vector is integral within IntTol.
func fractionalVar(x []float64) int {
	best := -1
	bestDist := IntTol
	for j, v := range x {
		d := math.Abs(v - math.Round(v))
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

func roundVector(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = math.Round(v)
	}
	return out
}

// IsIntegral reports whether every entry of x is integral within IntTol.
func IsIntegral(x []float64) bool { return fractionalVar(x) < 0 }
