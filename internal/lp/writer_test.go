package lp

import (
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	p := Problem{
		NumVars: 3,
		Obj:     []float64{3, 0, -2},
		Cons: []Constraint{
			{Coefs: []Coef{{0, 1}, {1, 2}}, Op: LE, RHS: 10},
			{Coefs: []Coef{{2, -1}, {0, 1}}, Op: EQ, RHS: 0},
			{Coefs: []Coef{{1, 1}, {1, 1}}, Op: GE, RHS: 4}, // merged duplicates
		},
	}
	var sb strings.Builder
	if err := WriteLP(&sb, p, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Maximize",
		"obj: 3 x0 - 2 x2",
		"Subject To",
		"c0: x0 + 2 x1 <= 10",
		"c1: x0 - x2 = 0",
		"c2: 2 x1 >= 4",
		"General",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPNamedVars(t *testing.T) {
	p := Problem{
		NumVars: 2,
		Obj:     []float64{1, 1},
		Cons:    []Constraint{{Coefs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 5}},
	}
	var sb strings.Builder
	name := func(j int) string { return []string{"edge_a", "edge_b"}[j] }
	if err := WriteLP(&sb, p, name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "edge_a + edge_b <= 5") {
		t.Errorf("named variables not used:\n%s", sb.String())
	}
}

func TestWriteLPValidation(t *testing.T) {
	var sb strings.Builder
	if err := WriteLP(&sb, Problem{NumVars: 2, Obj: []float64{1}}, nil); err == nil {
		t.Error("mismatched objective accepted")
	}
}

func TestWriteLPZeroObjective(t *testing.T) {
	var sb strings.Builder
	p := Problem{NumVars: 1, Obj: []float64{0},
		Cons: []Constraint{{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 1}}}
	if err := WriteLP(&sb, p, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "obj: 0 x0") {
		t.Errorf("zero objective not rendered:\n%s", sb.String())
	}
}
