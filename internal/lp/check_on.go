//go:build pwcetcheck

package lp

// checkEnabled gates the pwcetcheck sanitizer assertions (see check.go).
// Build or test with -tags pwcetcheck to verify the tableau invariants
// after every pivot, compaction and restore; without the tag the guard
// is a compile-time false and the checks cost nothing.
const checkEnabled = true
