package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveLP(t *testing.T, n int, cons []Constraint, obj []float64) *Solution {
	t.Helper()
	s, err := NewSimplex(n, cons)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Maximize(obj)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSimplexBasic(t *testing.T) {
	// max 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj=12.
	sol := solveLP(t, 2, []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 4},
		{Coefs: []Coef{{0, 1}, {1, 3}}, Op: LE, RHS: 6},
	}, []float64{3, 2})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj-12) > 1e-6 {
		t.Errorf("obj = %v, want 12", sol.Obj)
	}
}

func TestSimplexEquality(t *testing.T) {
	// max x + y  s.t.  x + y = 5, x <= 3  ->  obj = 5.
	sol := solveLP(t, 2, []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 5},
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 3},
	}, []float64{1, 1})
	if sol.Status != Optimal || math.Abs(sol.Obj-5) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 5", sol.Status, sol.Obj)
	}
	if math.Abs(sol.X[0]+sol.X[1]-5) > 1e-6 {
		t.Errorf("x+y = %v, want 5", sol.X[0]+sol.X[1])
	}
}

func TestSimplexGE(t *testing.T) {
	// max -x  s.t.  x >= 3  ->  x = 3, obj = -3.
	sol := solveLP(t, 1, []Constraint{
		{Coefs: []Coef{{0, 1}}, Op: GE, RHS: 3},
	}, []float64{-1})
	if sol.Status != Optimal || math.Abs(sol.Obj+3) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal -3", sol.Status, sol.Obj)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	sol := solveLP(t, 1, []Constraint{
		{Coefs: []Coef{{0, 1}}, Op: GE, RHS: 5},
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 2},
	}, []float64{1})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	sol := solveLP(t, 2, []Constraint{
		{Coefs: []Coef{{1, 1}}, Op: LE, RHS: 10},
	}, []float64{1, 0})
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// -x <= -2  is  x >= 2; max -x -> x=2.
	sol := solveLP(t, 1, []Constraint{
		{Coefs: []Coef{{0, -1}}, Op: LE, RHS: -2},
	}, []float64{-1})
	if sol.Status != Optimal || math.Abs(sol.Obj+2) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal -2", sol.Status, sol.Obj)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's classic cycling example; the Bland fallback must solve it.
	// Optimum 0.05 at x = (0.04, 0, 1, 0).
	sol := solveLP(t, 4, []Constraint{
		{Coefs: []Coef{{0, 0.25}, {1, -60}, {2, -1.0 / 25}, {3, 9}}, Op: LE, RHS: 0},
		{Coefs: []Coef{{0, 0.5}, {1, -90}, {2, -1.0 / 50}, {3, 3}}, Op: LE, RHS: 0},
		{Coefs: []Coef{{2, 1}}, Op: LE, RHS: 1},
	}, []float64{0.75, -150, 1.0 / 50, -6})
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Obj-0.05) > 1e-6 {
		t.Errorf("obj = %v, want 0.05", sol.Obj)
	}
}

func TestWarmRestartManyObjectives(t *testing.T) {
	// One constraint set, several objectives; results must match cold
	// solves.
	cons := []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 2}, {2, 1}}, Op: LE, RHS: 10},
		{Coefs: []Coef{{0, 1}, {1, -1}}, Op: GE, RHS: 1},
		{Coefs: []Coef{{2, 1}, {1, 1}}, Op: EQ, RHS: 4},
	}
	objs := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{3, -1, 2},
		{-1, -1, -1},
		{5, 5, 5},
	}
	warm, err := NewSimplex(3, cons)
	if err != nil {
		t.Fatal(err)
	}
	for k, obj := range objs {
		w, err := warm.Maximize(obj)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewSimplex(3, cons)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cold.Maximize(obj)
		if err != nil {
			t.Fatal(err)
		}
		if w.Status != c.Status {
			t.Fatalf("objective %d: warm %v vs cold %v", k, w.Status, c.Status)
		}
		if w.Status == Optimal && math.Abs(w.Obj-c.Obj) > 1e-6 {
			t.Errorf("objective %d: warm obj %v vs cold %v", k, w.Obj, c.Obj)
		}
	}
}

func TestILPBranching(t *testing.T) {
	// max x + y  s.t.  2x + 2y <= 5  -> LP opt 2.5, ILP opt 2.
	sol, err := SolveILP(Problem{
		NumVars: 2,
		Obj:     []float64{1, 1},
		Cons: []Constraint{
			{Coefs: []Coef{{0, 2}, {1, 2}}, Op: LE, RHS: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("got %v obj=%v, want optimal 2", sol.Status, sol.Obj)
	}
}

func TestILPKnapsack(t *testing.T) {
	// Knapsack: values 60,100,120; weights 10,20,30; cap 50; x_i <= 1.
	// Optimal integer value: 220 (items 2 and 3).
	cons := []Constraint{
		{Coefs: []Coef{{0, 10}, {1, 20}, {2, 30}}, Op: LE, RHS: 50},
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 1},
		{Coefs: []Coef{{1, 1}}, Op: LE, RHS: 1},
		{Coefs: []Coef{{2, 1}}, Op: LE, RHS: 1},
	}
	sol, err := SolveILP(Problem{NumVars: 3, Obj: []float64{60, 100, 120}, Cons: cons})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-220) > 1e-9 {
		t.Fatalf("got %v obj=%v, want optimal 220", sol.Status, sol.Obj)
	}
}

func TestILPInfeasible(t *testing.T) {
	sol, err := SolveILP(Problem{
		NumVars: 1,
		Obj:     []float64{1},
		Cons: []Constraint{
			{Coefs: []Coef{{0, 2}}, Op: EQ, RHS: 3},
			{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible (2x=3 has no integer solution)", sol.Status)
	}
}

// TestILPAgainstBruteForce cross-checks the solver against exhaustive
// enumeration on random small integer programs with bounded variables.
func TestILPAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2..3 vars
		ub := 4              // x_j in [0,4]
		var cons []Constraint
		for j := 0; j < n; j++ {
			cons = append(cons, Constraint{Coefs: []Coef{{j, 1}}, Op: LE, RHS: float64(ub)})
		}
		nc := 1 + rng.Intn(3)
		for k := 0; k < nc; k++ {
			var cf []Coef
			for j := 0; j < n; j++ {
				cf = append(cf, Coef{j, float64(rng.Intn(7) - 3)})
			}
			cons = append(cons, Constraint{Coefs: cf, Op: LE, RHS: float64(rng.Intn(10))})
		}
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(11) - 5)
		}

		sol, err := SolveILP(Problem{NumVars: n, Obj: obj, Cons: cons})
		if err != nil {
			t.Logf("seed %d: solver error %v", seed, err)
			return false
		}

		// Brute force over the grid.
		bestObj := math.Inf(-1)
		feasible := false
		x := make([]float64, n)
		var walk func(j int)
		walk = func(j int) {
			if j == n {
				for _, c := range cons {
					lhs := 0.0
					for _, cf := range c.Coefs {
						lhs += cf.Val * x[cf.Var]
					}
					switch c.Op {
					case LE:
						if lhs > c.RHS+1e-9 {
							return
						}
					case GE:
						if lhs < c.RHS-1e-9 {
							return
						}
					case EQ:
						if math.Abs(lhs-c.RHS) > 1e-9 {
							return
						}
					}
				}
				feasible = true
				v := 0.0
				for j2 := range obj {
					v += obj[j2] * x[j2]
				}
				if v > bestObj {
					bestObj = v
				}
				return
			}
			for v := 0; v <= ub; v++ {
				x[j] = float64(v)
				walk(j + 1)
			}
		}
		walk(0)

		if !feasible {
			return sol.Status == Infeasible
		}
		if sol.Status != Optimal {
			t.Logf("seed %d: solver says %v, brute force found obj %v", seed, sol.Status, bestObj)
			return false
		}
		if math.Abs(sol.Obj-bestObj) > 1e-6 {
			t.Logf("seed %d: solver obj %v, brute force %v", seed, sol.Obj, bestObj)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := NewSimplex(1, []Constraint{{Coefs: []Coef{{3, 1}}, Op: LE, RHS: 1}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := SolveILP(Problem{NumVars: 2, Obj: []float64{1}}); err == nil {
		t.Error("mismatched objective accepted")
	}
}

func TestIsIntegral(t *testing.T) {
	if !IsIntegral([]float64{1, 2, 3.0000000001}) {
		t.Error("near-integral vector rejected")
	}
	if IsIntegral([]float64{1.5}) {
		t.Error("fractional vector accepted")
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op.String mismatch")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status.String mismatch")
	}
}
