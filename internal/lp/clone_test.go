package lp

import (
	"math"
	"testing"
)

// testSystem builds a small LP with an equality (so phase 1 runs) and a
// bound constraint: maximize objectives over x0+x1 = 10, x0 <= 7.
func testSystem(t *testing.T) *Simplex {
	t.Helper()
	sx, err := NewSimplex(2, []Constraint{
		{Coefs: []Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, Op: EQ, RHS: 10},
		{Coefs: []Coef{{Var: 0, Val: 1}}, Op: LE, RHS: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sx.Feasible() {
		t.Fatal("test system infeasible")
	}
	return sx
}

func maximize(t *testing.T, sx *Simplex, obj []float64) float64 {
	t.Helper()
	sol, err := sx.Maximize(obj)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	return sol.Obj
}

// TestCloneIndependent: pivoting a clone leaves the original's state
// (and future solve results) untouched, and vice versa.
func TestCloneIndependent(t *testing.T) {
	orig := testSystem(t)
	clone := orig.Clone()

	// Drive the clone through a solve that pivots the basis.
	if got := maximize(t, clone, []float64{3, 1}); math.Abs(got-3*7-1*3) > 1e-9 {
		t.Fatalf("clone objective %g, want 24", got)
	}
	// The original still answers a different objective correctly.
	if got := maximize(t, orig, []float64{0, 1}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("original objective %g, want 10", got)
	}
	// And the clone is not perturbed by the original's pivots.
	if got := maximize(t, clone, []float64{3, 1}); math.Abs(got-24) > 1e-9 {
		t.Fatalf("clone re-solve %g, want 24", got)
	}
}

// TestCopyFromRestores: after arbitrary pivoting, CopyFrom resets a
// scratch simplex to the pristine state, and subsequent solves agree
// with a fresh clone's.
func TestCopyFromRestores(t *testing.T) {
	pristine := testSystem(t)
	scratch := pristine.Clone()
	maximize(t, scratch, []float64{5, 0}) // pivot away from the pristine basis

	if err := scratch.CopyFrom(pristine); err != nil {
		t.Fatal(err)
	}
	fresh := pristine.Clone()
	objs := [][]float64{{1, 0}, {0, 1}, {2, 3}}
	for _, obj := range objs {
		a := maximize(t, scratch, obj)
		b := maximize(t, fresh, obj)
		if a != b {
			t.Fatalf("restored scratch diverged from fresh clone on %v: %g vs %g", obj, a, b)
		}
	}
}

// TestCopyFromShapeMismatch: restoring across different constraint
// systems is rejected.
func TestCopyFromShapeMismatch(t *testing.T) {
	a := testSystem(t)
	b, err := NewSimplex(3, []Constraint{
		{Coefs: []Coef{{Var: 2, Val: 1}}, Op: LE, RHS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CopyFrom(b); err == nil {
		t.Fatal("CopyFrom accepted a different tableau shape")
	}
}
