package lp

// This file retains the dense simplex implementation — the exact pivot
// and iteration loops the package shipped before the sparse/compacted
// hot path — as an executable specification. NewReferenceSimplex builds
// a Simplex that runs these loops over the uncompacted tableau (barred
// artificial columns kept, whole rows swept on every pivot). The
// differential tests assert that both implementations produce identical
// pivot sequences and bit-identical solutions; internal/ipet and
// internal/core extend the comparison to whole-pipeline byte-identity
// on the Mälardalen benchmarks.

// referenceIterate is the dense phase-2 loop: full-width objective
// updates after every pivot.
func (s *Simplex) referenceIterate(obj []float64) iterStatus {
	stall := 0
	for iter := 0; iter < s.budget; iter++ {
		if s.cancel != nil && iter&cancelCheckMask == 0 {
			if err := s.cancel(); err != nil {
				s.cancelErr = err
				return iterCanceled
			}
		}
		bland := stall > 2*(len(s.rows)+10)
		j := s.chooseEntering(obj, bland)
		if j < 0 {
			return iterOptimal
		}
		i := s.chooseLeaving(j)
		if i < 0 {
			return iterUnbounded
		}
		c := obj[j] // reduced cost of the entering variable
		s.referencePivot(i, j)
		// Update the objective row for the pivot.
		row := s.rows[i]
		for k := range obj {
			obj[k] -= c * row[k]
		}
		obj[j] = 0
		if gain := c * s.rhs[i]; gain > 1e-10 {
			stall = 0
		} else {
			stall++
		}
	}
	return iterTruncated
}

// referencePivot is the dense basis exchange: every row is updated over
// its full width, zeros included.
func (s *Simplex) referencePivot(pi, pj int) {
	prow := s.rows[pi]
	p := prow[pj]
	inv := 1 / p
	for j := range prow {
		prow[j] *= inv
	}
	s.rhs[pi] *= inv
	prow[pj] = 1 // avoid drift
	for i := range s.rows {
		if i == pi || !s.active[i] {
			continue
		}
		f := s.rows[i][pj]
		if f == 0 {
			continue
		}
		row := s.rows[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[pj] = 0
		s.rhs[i] -= f * s.rhs[pi]
		if s.rhs[i] < 0 && s.rhs[i] > -1e-9 {
			s.rhs[i] = 0
		}
	}
	s.basis[pi] = pj
	s.version++
}
