package lp

import "fmt"

// Clone returns an independent deep copy of the simplex: a tableau in
// the exact same state (basis, activity, feasibility) that can be
// pivoted through Maximize without affecting the receiver. Cloning a
// warm simplex is how callers fan one constraint system out over
// worker goroutines: phase 1 runs once, every worker pivots its own
// copy.
func (s *Simplex) Clone() *Simplex {
	c := &Simplex{
		n:        s.n,
		ncols:    s.ncols,
		artStart: s.artStart,
		rows:     make([][]float64, len(s.rows)),
		rhs:      append([]float64(nil), s.rhs...),
		basis:    append([]int(nil), s.basis...),
		active:   append([]bool(nil), s.active...),
		barred:   append([]bool(nil), s.barred...),
		feasible: s.feasible,
	}
	for i, row := range s.rows {
		c.rows[i] = append([]float64(nil), row...)
	}
	return c
}

// CopyFrom restores the receiver to src's exact state, reusing the
// receiver's buffers (no allocation). Receiver and src must descend
// from the same NewSimplex call — same constraint set, hence same
// tableau shape; CopyFrom returns an error otherwise. Resetting a
// worker's scratch simplex from a pristine source before each task is
// what makes results independent of how tasks are distributed over
// workers: every task starts its pivot path from the same basis.
func (s *Simplex) CopyFrom(src *Simplex) error {
	if s.n != src.n || s.ncols != src.ncols || len(s.rows) != len(src.rows) {
		return fmt.Errorf("lp: CopyFrom across different tableau shapes (%dx%d vs %dx%d)",
			len(s.rows), s.ncols, len(src.rows), src.ncols)
	}
	for i := range s.rows {
		copy(s.rows[i], src.rows[i])
	}
	copy(s.rhs, src.rhs)
	copy(s.basis, src.basis)
	copy(s.active, src.active)
	copy(s.barred, src.barred)
	s.feasible = src.feasible
	return nil
}
