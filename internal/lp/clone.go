package lp

import "fmt"

// Clone returns an independent deep copy of the simplex: a tableau in
// the exact same state (basis, activity, feasibility) that can be
// pivoted through Maximize without affecting the receiver. Cloning a
// warm simplex is how callers fan one constraint system out over
// worker goroutines: phase 1 runs once, every worker pivots its own
// copy. The clone starts tracking the receiver as its pristine source,
// so a later CopyFrom(receiver) restores only the rows the clone
// actually pivoted.
func (s *Simplex) Clone() *Simplex {
	c := &Simplex{
		n:         s.n,
		ncols:     s.ncols,
		artStart:  s.artStart,
		rows:      make([][]float64, len(s.rows)),
		rhs:       append([]float64(nil), s.rhs...),
		basis:     append([]int(nil), s.basis...),
		active:    append([]bool(nil), s.active...),
		feasible:  s.feasible,
		truncated: s.truncated,
		ref:       s.ref,
		budget:    s.budget,
	}
	if s.barred != nil {
		c.barred = append([]bool(nil), s.barred...)
	}
	if s.backing != nil {
		c.backing = append([]float64(nil), s.backing...)
		w := s.ncols
		for i := range c.rows {
			c.rows[i] = c.backing[i*w : (i+1)*w : (i+1)*w]
		}
	} else {
		for i, row := range s.rows {
			c.rows[i] = append([]float64(nil), row...)
		}
	}
	if !s.ref {
		c.src, c.srcVersion = s, s.version
		c.dirty = make([]bool, len(s.rows))
	}
	return c
}

// CopyFrom restores the receiver to src's exact state, reusing the
// receiver's buffers (no allocation). Receiver and src must descend
// from the same NewSimplex (or NewReferenceSimplex) call — same
// constraint set, hence same tableau shape and mode; CopyFrom returns
// an error otherwise. Resetting a worker's scratch simplex from a
// pristine source before each task is what makes results independent
// of how tasks are distributed over workers: every task starts its
// pivot path from the same basis.
//
// When the receiver already tracks src (it was cloned from src, or
// fully restored to it before) and src has not been pivoted since,
// only the rows the receiver dirtied are copied back — for the FMM
// workload, a handful of pivoted rows instead of the whole tableau per
// set. Any doubt (different source, source mutated, reference mode)
// falls back to the full restore.
func (s *Simplex) CopyFrom(src *Simplex) error {
	if s.n != src.n || s.ncols != src.ncols || len(s.rows) != len(src.rows) || s.ref != src.ref {
		return fmt.Errorf("lp: CopyFrom across different tableau shapes (%dx%d vs %dx%d)",
			len(s.rows), s.ncols, len(src.rows), src.ncols)
	}
	if !s.ref && s.src == src && s.srcVersion == src.version && s.dirty != nil {
		for _, i := range s.dirtyRows {
			copy(s.rows[i], src.rows[i])
			s.rhs[i] = src.rhs[i]
			s.basis[i] = src.basis[i]
			s.dirty[i] = false
		}
		s.dirtyRows = s.dirtyRows[:0]
		s.version++
		if checkEnabled {
			s.check("CopyFrom dirty-rows")
		}
		return nil
	}
	if s.backing != nil && src.backing != nil {
		copy(s.backing, src.backing)
	} else {
		for i := range s.rows {
			copy(s.rows[i], src.rows[i])
		}
	}
	copy(s.rhs, src.rhs)
	copy(s.basis, src.basis)
	copy(s.active, src.active)
	if s.barred != nil && src.barred != nil {
		copy(s.barred, src.barred)
	}
	s.feasible = src.feasible
	s.truncated = src.truncated
	if !s.ref {
		if s.dirty == nil {
			s.dirty = make([]bool, len(s.rows))
		}
		for _, i := range s.dirtyRows {
			s.dirty[i] = false
		}
		s.dirtyRows = s.dirtyRows[:0]
		s.src, s.srcVersion = src, src.version
	}
	s.version++
	if checkEnabled {
		s.check("CopyFrom full")
	}
	return nil
}
