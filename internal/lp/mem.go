package lp

// MemBytes estimates the resident heap bytes of the simplex tableau:
// the row storage (the contiguous backing array once compacted, the
// per-row slices in reference mode), the right-hand sides, the basis
// and row-state vectors and the restore/scratch bookkeeping. The
// estimate ignores fixed struct overhead and allocator rounding — it
// exists to give memoized warm systems a cost for LRU eviction
// budgets (core.EngineOptions.MaxArtifactBytes), where relative
// consistency matters and byte exactness does not.
func (s *Simplex) MemBytes() int64 {
	const (
		wordBytes        = 8
		sliceHeaderBytes = 24
	)
	b := int64(cap(s.rows)) * sliceHeaderBytes
	if s.backing != nil {
		// Compacted: every row aliases the backing array; counting the
		// rows' caps would double-count it.
		b += int64(cap(s.backing)) * wordBytes
	} else {
		for _, row := range s.rows {
			b += int64(cap(row)) * wordBytes
		}
	}
	b += int64(cap(s.rhs)) * wordBytes
	b += int64(cap(s.basis)) * wordBytes
	b += int64(cap(s.active)) + int64(cap(s.barred)) + int64(cap(s.dirty))
	b += int64(cap(s.dirtyRows)) * wordBytes
	b += int64(cap(s.nz)) * wordBytes
	return b
}
