package lp

import "fmt"

// check asserts the tableau invariants of a Simplex and panics with the
// violation when one fails. It runs after every pivot, compaction and
// CopyFrom under `if checkEnabled` — the pwcetcheck build tag (see
// check_on.go); in a default build the guard is constant-false and this
// function is never reached. Everything here is O(rows), so even the
// per-pivot call does not change the solver's asymptotics under the tag.
//
// Invariants checked:
//
//   - shape: rhs, basis and active are parallel to rows, every row is
//     ncols wide;
//   - basis consistency: each active row's basic column is in range,
//     distinct from every other active row's, and carries the exact unit
//     coefficient 1 in its own row (pivot sets it explicitly). Enforced
//     only while the tableau is live (feasible and not truncated): an
//     infeasible or budget-truncated phase 1 legitimately leaves basic
//     artificials behind, and every Maximize short-circuits before
//     touching them;
//   - compaction: once backing exists, every row aliases its backing
//     segment (a row that escaped the contiguous storage would silently
//     stop being restored by the backing fast path of CopyFrom) and the
//     artificial columns are gone (ncols == artStart);
//   - dirty bookkeeping: dirtyRows lists exactly the rows flagged in
//     dirty, without duplicates — a flagged row missing from the list
//     would survive a dirty-rows CopyFrom with stale contents.
func (s *Simplex) check(where string) {
	m := len(s.rows)
	if len(s.rhs) != m || len(s.basis) != m || len(s.active) != m {
		panic(fmt.Sprintf("pwcetcheck: %s: parallel slices disagree: %d rows, %d rhs, %d basis, %d active",
			where, m, len(s.rhs), len(s.basis), len(s.active)))
	}
	live := s.feasible && !s.truncated
	basicAt := make(map[int]int, m)
	for i, row := range s.rows {
		if len(row) != s.ncols {
			panic(fmt.Sprintf("pwcetcheck: %s: row %d has %d columns, want %d", where, i, len(row), s.ncols))
		}
		if !live || !s.active[i] {
			continue
		}
		b := s.basis[i]
		if b < 0 || b >= s.ncols {
			panic(fmt.Sprintf("pwcetcheck: %s: active row %d has basis column %d outside [0,%d)", where, i, b, s.ncols))
		}
		if prev, dup := basicAt[b]; dup {
			panic(fmt.Sprintf("pwcetcheck: %s: column %d is basic in rows %d and %d", where, b, prev, i))
		}
		basicAt[b] = i
		if row[b] != 1 {
			panic(fmt.Sprintf("pwcetcheck: %s: active row %d has coefficient %g at its basic column %d, want exactly 1",
				where, i, row[b], b))
		}
	}
	if s.backing != nil {
		if s.ncols != s.artStart {
			panic(fmt.Sprintf("pwcetcheck: %s: compacted tableau still has artificial columns (ncols %d != artStart %d)",
				where, s.ncols, s.artStart))
		}
		w := s.ncols
		if len(s.backing) != m*w {
			panic(fmt.Sprintf("pwcetcheck: %s: backing holds %d cells, want %d rows x %d cols", where, len(s.backing), m, w))
		}
		for i, row := range s.rows {
			if w == 0 {
				break
			}
			if &row[0] != &s.backing[i*w] {
				panic(fmt.Sprintf("pwcetcheck: %s: row %d does not alias its backing segment; CopyFrom's backing fast path would skip it",
					where, i))
			}
		}
	}
	if s.dirty != nil {
		if len(s.dirty) != m {
			panic(fmt.Sprintf("pwcetcheck: %s: dirty tracks %d rows, want %d", where, len(s.dirty), m))
		}
		seen := make([]bool, m)
		for _, i := range s.dirtyRows {
			if i < 0 || i >= m || !s.dirty[i] {
				panic(fmt.Sprintf("pwcetcheck: %s: dirtyRows lists row %d which is not flagged dirty", where, i))
			}
			if seen[i] {
				panic(fmt.Sprintf("pwcetcheck: %s: dirtyRows lists row %d twice", where, i))
			}
			seen[i] = true
		}
		flagged := 0
		for _, d := range s.dirty {
			if d {
				flagged++
			}
		}
		if flagged != len(s.dirtyRows) {
			panic(fmt.Sprintf("pwcetcheck: %s: %d rows flagged dirty but dirtyRows lists %d; a flagged row would be restored stale",
				where, flagged, len(s.dirtyRows)))
		}
	}
}
