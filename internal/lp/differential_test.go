package lp

import (
	"errors"
	"math/rand"
	"testing"
)

// randomProblem builds a random sparse LP mixing the three operator
// kinds, shaped like the network-flow-with-side-constraints systems the
// package actually solves (small coefficient counts per row, integral
// coefficients, non-negative variables).
func randomProblem(rng *rand.Rand) (int, []Constraint, [][]float64) {
	n := 2 + rng.Intn(8)
	m := 1 + rng.Intn(10)
	cons := make([]Constraint, m)
	for i := range cons {
		nc := 1 + rng.Intn(3)
		if nc > n {
			nc = n
		}
		seen := map[int]bool{}
		var cf []Coef
		for len(cf) < nc {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			cf = append(cf, Coef{Var: v, Val: float64(rng.Intn(7) - 3)})
		}
		cons[i] = Constraint{
			Coefs: cf,
			Op:    Op(rng.Intn(3)),
			RHS:   float64(rng.Intn(21) - 5),
		}
	}
	// A few warm-start objectives per system, like the FMM's S*W sweep.
	objs := make([][]float64, 1+rng.Intn(4))
	for k := range objs {
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(9))
		}
		objs[k] = obj
	}
	return n, cons, objs
}

// TestSparseMatchesReference pits the compacted/sparse simplex against
// the retained dense reference on random systems: same feasibility,
// and for every warm-started objective the same status, bit-identical
// solution vector and objective value. The sparse path skips exactly
// the `x -= f*0` no-op updates, so any divergence — even in the last
// ulp — is a bug.
func TestSparseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		n, cons, objs := randomProblem(rng)
		fast, err := NewSimplex(n, cons)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReferenceSimplex(n, cons)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Feasible() != ref.Feasible() {
			t.Fatalf("iter %d: feasibility %v vs reference %v", iter, fast.Feasible(), ref.Feasible())
		}
		for k, obj := range objs {
			fs, ferr := fast.Maximize(obj)
			rs, rerr := ref.Maximize(obj)
			if (ferr != nil) != (rerr != nil) {
				t.Fatalf("iter %d obj %d: error %v vs reference %v", iter, k, ferr, rerr)
			}
			if ferr != nil {
				continue
			}
			if fs.Status != rs.Status {
				t.Fatalf("iter %d obj %d: status %v vs reference %v", iter, k, fs.Status, rs.Status)
			}
			if fs.Status != Optimal {
				continue
			}
			if fs.Obj != rs.Obj {
				t.Fatalf("iter %d obj %d: objective %v vs reference %v", iter, k, fs.Obj, rs.Obj)
			}
			for j := range fs.X {
				if fs.X[j] != rs.X[j] {
					t.Fatalf("iter %d obj %d: x[%d] = %v vs reference %v", iter, k, j, fs.X[j], rs.X[j])
				}
			}
		}
	}
}

// TestDirtyCopyFromMatchesFullRestore drives a clone through warm
// solves and dirty-row restores, checking after every restore that a
// freshly cloned simplex (full state) produces bit-identical solutions:
// the dirty tracking must leave no stale row behind.
func TestDirtyCopyFromMatchesFullRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n, cons, objs := randomProblem(rng)
		src, err := NewSimplex(n, cons)
		if err != nil {
			t.Fatal(err)
		}
		if !src.Feasible() {
			continue
		}
		worker := src.Clone()
		for k, obj := range objs {
			if err := worker.CopyFrom(src); err != nil {
				t.Fatal(err)
			}
			ws, werr := worker.Maximize(obj)
			fresh := src.Clone()
			fs, ferr := fresh.Maximize(obj)
			if (werr != nil) != (ferr != nil) {
				t.Fatalf("iter %d obj %d: error %v vs fresh %v", iter, k, werr, ferr)
			}
			if werr != nil {
				continue
			}
			if ws.Status != fs.Status || ws.Obj != fs.Obj {
				t.Fatalf("iter %d obj %d: (%v, %v) vs fresh (%v, %v)", iter, k, ws.Status, ws.Obj, fs.Status, fs.Obj)
			}
			for j := range ws.X {
				if ws.X[j] != fs.X[j] {
					t.Fatalf("iter %d obj %d: x[%d] = %v vs fresh %v", iter, k, j, ws.X[j], fs.X[j])
				}
			}
		}
	}
}

// TestCopyFromDetectsMutatedSource: the dirty fast path must notice
// that the tracked source was pivoted after the clone and fall back to
// a full restore instead of resurrecting a stale basis.
func TestCopyFromDetectsMutatedSource(t *testing.T) {
	src, err := NewSimplex(2, []Constraint{
		{Coefs: []Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, Op: LE, RHS: 4},
		{Coefs: []Coef{{Var: 0, Val: 1}}, Op: LE, RHS: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	worker := src.Clone()
	// Mutate the source: a warm solve pivots it.
	if _, err := src.Maximize([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := worker.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	// The worker must now equal the mutated source exactly: a second
	// Maximize on both must agree bit for bit.
	ws, err := worker.Maximize([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := src.Clone().Maximize([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Obj != ss.Obj || ws.X[0] != ss.X[0] || ws.X[1] != ss.X[1] {
		t.Fatalf("restored worker diverged: %+v vs %+v", ws, ss)
	}
}

// TestPivotBudgetSurfacesAsError: exhausting the pivot budget must
// surface as ErrPivotLimit from Maximize, never as a silent
// "optimal-so-far" answer (regression test for the former silent
// truncation).
func TestPivotBudgetSurfacesAsError(t *testing.T) {
	s, err := NewSimplex(3, []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 2}, {2, 1}}, Op: LE, RHS: 14},
		{Coefs: []Coef{{0, 3}, {1, 1}, {2, 2}}, Op: LE, RHS: 25},
		{Coefs: []Coef{{0, 1}, {1, 1}, {2, 3}}, Op: LE, RHS: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.budget = 1 // the optimum needs several pivots
	_, err = s.Maximize([]float64{3, 2, 4})
	if !errors.Is(err, ErrPivotLimit) {
		t.Fatalf("Maximize with a one-pivot budget returned %v, want ErrPivotLimit", err)
	}
	// With the budget restored the same tableau must solve cleanly:
	// truncation of phase 2 is not sticky.
	s.budget = 100000
	sol, err := s.Maximize([]float64{3, 2, 4})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("after restoring the budget: %v, %v", sol, err)
	}
}

// TestPhase1TruncationIsSticky: a phase-1 budget exhaustion leaves the
// basis untrusted, so every subsequent Maximize must fail.
func TestPhase1TruncationIsSticky(t *testing.T) {
	s, err := NewSimplex(2, []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 10},
		{Coefs: []Coef{{0, 1}, {1, -1}}, Op: EQ, RHS: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.truncated = true // simulate a phase-1 budget exhaustion
	if _, err := s.Maximize([]float64{1, 1}); !errors.Is(err, ErrPivotLimit) {
		t.Fatalf("Maximize on a truncated phase 1 returned %v, want ErrPivotLimit", err)
	}
	// The flag must survive Clone and CopyFrom: a worker restored from
	// a truncated source is equally untrusted.
	c := s.Clone()
	if _, err := c.Maximize([]float64{1, 1}); !errors.Is(err, ErrPivotLimit) {
		t.Fatalf("clone of truncated simplex returned %v, want ErrPivotLimit", err)
	}
}
