package lp

import (
	"fmt"
	"io"
	"sort"
)

// WriteLP renders a problem in the CPLEX LP text format, the format the
// paper's authors would have fed to CPLEX 12.5. It exists for debugging
// and for cross-checking individual ILP systems against external
// solvers; the output is deterministic.
func WriteLP(w io.Writer, p Problem, varName func(int) string) error {
	if varName == nil {
		varName = func(j int) string { return fmt.Sprintf("x%d", j) }
	}
	if len(p.Obj) != p.NumVars {
		return fmt.Errorf("lp: objective has %d entries, want %d", len(p.Obj), p.NumVars)
	}

	fmt.Fprintln(w, "Maximize")
	fmt.Fprint(w, " obj:")
	wrote := false
	for j, c := range p.Obj {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, " %s", term(c, varName(j), !wrote))
		wrote = true
	}
	if !wrote {
		fmt.Fprint(w, " 0 "+varName(0))
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Subject To")
	for i, c := range p.Cons {
		// Merge duplicate variables deterministically.
		coef := map[int]float64{}
		for _, cf := range c.Coefs {
			coef[cf.Var] += cf.Val
		}
		vars := make([]int, 0, len(coef))
		for v := range coef {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		fmt.Fprintf(w, " c%d:", i)
		first := true
		for _, v := range vars {
			if coef[v] == 0 {
				continue
			}
			fmt.Fprintf(w, " %s", term(coef[v], varName(v), first))
			first = false
		}
		if first {
			fmt.Fprintf(w, " 0 %s", varName(0))
		}
		fmt.Fprintf(w, " %s %g\n", c.Op, c.RHS)
	}

	fmt.Fprintln(w, "General")
	for j := 0; j < p.NumVars; j++ {
		fmt.Fprintf(w, " %s\n", varName(j))
	}
	fmt.Fprintln(w, "End")
	return nil
}

// term formats one linear term with explicit sign handling.
func term(c float64, name string, first bool) string {
	switch {
	case first && c == 1:
		return name
	case first && c == -1:
		return "- " + name
	case first:
		return fmt.Sprintf("%g %s", c, name)
	case c == 1:
		return "+ " + name
	case c == -1:
		return "- " + name
	case c < 0:
		return fmt.Sprintf("- %g %s", -c, name)
	default:
		return fmt.Sprintf("+ %g %s", c, name)
	}
}
