package lp

import "testing"

// TestPwcetcheckCatchesCorruptBasis: under -tags pwcetcheck, a tableau
// whose basis bookkeeping was corrupted (two rows claiming the same
// basic column) must panic at the next pivot instead of silently
// solving from an inconsistent basis. Without the tag the test is
// skipped — the checks are compiled out there.
func TestPwcetcheckCatchesCorruptBasis(t *testing.T) {
	if !checkEnabled {
		t.Skip("pwcetcheck tag not enabled; sanitizer assertions are compiled out")
	}
	// Two constraints so the tableau has two slack rows; an objective on
	// x0 forces at least one pivot, which runs the check.
	s, err := NewSimplex(2, []Constraint{
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 5},
		{Coefs: []Coef{{1, 1}}, Op: LE, RHS: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.basis[1] = s.basis[0] // corrupt: duplicate basic column
	defer func() {
		if recover() == nil {
			t.Fatal("Maximize on a corrupted basis did not panic under pwcetcheck")
		}
	}()
	_, _ = s.Maximize([]float64{1, 1})
}

// TestPwcetcheckCatchesCorruptDirtyRows: a row flagged dirty but missing
// from dirtyRows would be restored stale by the dirty-rows CopyFrom fast
// path; the sanitizer must catch the inconsistency at the restore.
func TestPwcetcheckCatchesCorruptDirtyRows(t *testing.T) {
	if !checkEnabled {
		t.Skip("pwcetcheck tag not enabled; sanitizer assertions are compiled out")
	}
	src, err := NewSimplex(2, []Constraint{
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 5},
		{Coefs: []Coef{{1, 1}}, Op: LE, RHS: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := src.Clone()
	if _, err := w.Maximize([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	w.dirty[0] = true
	w.dirtyRows = nil // corrupt: flagged row no longer listed
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with corrupted dirty bookkeeping did not panic under pwcetcheck")
		}
	}()
	_ = w.CopyFrom(src)
}
