package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRedundantRows(t *testing.T) {
	// Three copies of the same equality: phase 1 must deactivate the
	// redundant artificials rather than declare infeasibility.
	cons := []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 4},
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 4},
		{Coefs: []Coef{{0, 2}, {1, 2}}, Op: EQ, RHS: 8},
	}
	sol := solveLP(t, 2, cons, []float64{1, 0})
	if sol.Status != Optimal || math.Abs(sol.Obj-4) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 4", sol.Status, sol.Obj)
	}
}

func TestEqualityOnlySystem(t *testing.T) {
	// Pure equality system with a unique solution: x=2, y=3.
	cons := []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 5},
		{Coefs: []Coef{{0, 1}, {1, -1}}, Op: EQ, RHS: -1},
	}
	sol := solveLP(t, 2, cons, []float64{3, -1})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-3) > 1e-6 {
		t.Errorf("x = %v, want (2,3)", sol.X)
	}
}

func TestZeroObjective(t *testing.T) {
	cons := []Constraint{{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 5}}
	sol := solveLP(t, 1, cons, []float64{0})
	if sol.Status != Optimal || sol.Obj != 0 {
		t.Fatalf("zero objective: %v obj=%v", sol.Status, sol.Obj)
	}
}

func TestEmptyConstraintSet(t *testing.T) {
	s, err := NewSimplex(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Maximize([]float64{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	// Non-positive objective over x >= 0: optimum at the origin.
	if sol.Status != Optimal || sol.Obj != 0 {
		t.Fatalf("got %v obj=%v, want optimal 0", sol.Status, sol.Obj)
	}
	sol2, err := s.Maximize([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Unbounded {
		t.Fatalf("unconstrained positive objective: %v, want unbounded", sol2.Status)
	}
}

// TestNetworkFlowIntegrality checks that random network-flow systems
// (the IPET shape: flow conservation + capacity bounds) solve to
// integral vertices without branch & bound — the structural property
// the warm-start design relies on.
func TestNetworkFlowIntegrality(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random layered DAG: source -> L1 -> L2 -> sink, unit source.
		l1 := 2 + rng.Intn(3)
		l2 := 2 + rng.Intn(3)
		// Variables: edges source->L1 (l1), L1->L2 (l1*l2), L2->sink (l2).
		n := l1 + l1*l2 + l2
		eS := func(i int) int { return i }
		eM := func(i, j int) int { return l1 + i*l2 + j }
		eT := func(j int) int { return l1 + l1*l2 + j }
		var cons []Constraint
		// Source emits exactly 1.
		cf := make([]Coef, l1)
		for i := range cf {
			cf[i] = Coef{eS(i), 1}
		}
		cons = append(cons, Constraint{Coefs: cf, Op: EQ, RHS: 1})
		// L1 conservation.
		for i := 0; i < l1; i++ {
			row := []Coef{{eS(i), 1}}
			for j := 0; j < l2; j++ {
				row = append(row, Coef{eM(i, j), -1})
			}
			cons = append(cons, Constraint{Coefs: row, Op: EQ, RHS: 0})
		}
		// L2 conservation.
		for j := 0; j < l2; j++ {
			row := []Coef{{eT(j), -1}}
			for i := 0; i < l1; i++ {
				row = append(row, Coef{eM(i, j), 1})
			}
			cons = append(cons, Constraint{Coefs: row, Op: EQ, RHS: 0})
		}
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = float64(rng.Intn(20))
		}
		s, err := NewSimplex(n, cons)
		if err != nil {
			return false
		}
		sol, err := s.Maximize(obj)
		if err != nil || sol.Status != Optimal {
			return false
		}
		return IsIntegral(sol.X)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestWarmStartStress re-solves many random objectives on one system
// warm and compares each against a cold solve.
func TestWarmStartStress(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cons := []Constraint{
		{Coefs: []Coef{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, Op: LE, RHS: 10},
		{Coefs: []Coef{{0, 1}, {1, -1}}, Op: LE, RHS: 2},
		{Coefs: []Coef{{2, 1}, {3, 2}}, Op: GE, RHS: 1},
		{Coefs: []Coef{{0, 1}, {2, 1}}, Op: EQ, RHS: 4},
	}
	warm, err := NewSimplex(4, cons)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		obj := make([]float64, 4)
		for j := range obj {
			obj[j] = float64(rng.Intn(21) - 10)
		}
		w, err := warm.Maximize(obj)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewSimplex(4, cons)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cold.Maximize(obj)
		if err != nil {
			t.Fatal(err)
		}
		if w.Status != c.Status {
			t.Fatalf("objective %d: warm %v cold %v", k, w.Status, c.Status)
		}
		if w.Status == Optimal && math.Abs(w.Obj-c.Obj) > 1e-6 {
			t.Fatalf("objective %d: warm %v cold %v", k, w.Obj, c.Obj)
		}
	}
}

func TestLargeCoefficients(t *testing.T) {
	// IPET objectives mix unit flow constraints with 1e5-scale costs;
	// check no precision collapse.
	cons := []Constraint{
		{Coefs: []Coef{{0, 1}}, Op: LE, RHS: 1000},
		{Coefs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 1500},
	}
	sol := solveLP(t, 2, cons, []float64{100000, 99999})
	if sol.Status != Optimal {
		t.Fatal(sol.Status)
	}
	want := 1000*100000.0 + 500*99999.0
	if math.Abs(sol.Obj-want) > 1e-3 {
		t.Errorf("obj = %v, want %v", sol.Obj, want)
	}
}

// TestFlipPanicsOnInvalidOp: flipping a corrupted Op must panic instead
// of silently coercing the constraint to equality, which would tighten
// the feasible region without any error surfacing.
func TestFlipPanicsOnInvalidOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("flip on an invalid Op did not panic")
		}
	}()
	_ = flip(Op(42))
}
