// Package cache models set-associative instruction caches with LRU
// replacement, including concrete simulation in the presence of permanently
// faulty (disabled) cache blocks and of the two reliability mechanisms
// studied in the paper: the Reliable Way (RW) and the Shared Reliable
// Buffer (SRB).
//
// The package is the hardware substrate of the reproduction: the static
// analyses in internal/absint and internal/ipet reason about the same
// geometry, and internal/sim uses the concrete simulator to validate the
// static bounds.
package cache

import "fmt"

// Config describes a set-associative instruction cache.
//
// The paper's experimental configuration is 1KB, 4 ways, 16-byte lines,
// 1-cycle cache latency and 100-cycle memory latency; see PaperConfig.
type Config struct {
	// Sets is the number of cache sets (S in the paper).
	Sets int
	// Ways is the associativity (W in the paper).
	Ways int
	// BlockBytes is the cache line size in bytes (K = 8*BlockBytes bits).
	BlockBytes int
	// HitLatency is the access latency of the cache in cycles.
	HitLatency int64
	// MemLatency is the additional latency of a memory access on a cache
	// miss, in cycles.
	MemLatency int64
}

// PaperConfig returns the cache configuration used throughout the paper's
// evaluation (Section IV.A): 1KB capacity, 4-way set-associative, 16-byte
// lines, 1-cycle cache latency, 100-cycle memory latency.
func PaperConfig() Config {
	return Config{
		Sets:       16,
		Ways:       4,
		BlockBytes: 16,
		HitLatency: 1,
		MemLatency: 100,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0:
		return fmt.Errorf("cache: Sets must be positive, got %d", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	case c.BlockBytes <= 0:
		return fmt.Errorf("cache: BlockBytes must be positive, got %d", c.BlockBytes)
	case c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: BlockBytes must be a power of two, got %d", c.BlockBytes)
	case c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("cache: Sets must be a power of two, got %d", c.Sets)
	case c.HitLatency <= 0:
		return fmt.Errorf("cache: HitLatency must be positive, got %d", c.HitLatency)
	case c.MemLatency <= 0:
		return fmt.Errorf("cache: MemLatency must be positive, got %d", c.MemLatency)
	}
	return nil
}

// SizeBytes returns the total cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.BlockBytes }

// BlockBits returns the block size in bits (K in equation 1 of the paper).
func (c Config) BlockBits() int { return 8 * c.BlockBytes }

// MissCost returns the total cost in cycles of an access that misses:
// the cache probe plus the memory access.
func (c Config) MissCost() int64 { return c.HitLatency + c.MemLatency }

// MissPenalty returns the extra cost of a miss over a hit, in cycles.
// Fault-induced misses each contribute exactly this penalty.
func (c Config) MissPenalty() int64 { return c.MemLatency }

// BlockAddr maps a byte address to its memory-block address.
func (c Config) BlockAddr(addr uint32) uint32 { return addr / uint32(c.BlockBytes) }

// SetOf maps a byte address to the cache set it belongs to.
func (c Config) SetOf(addr uint32) int { return int(c.BlockAddr(addr)) % c.Sets }

// SetOfBlock maps a memory-block address to the cache set it belongs to.
func (c Config) SetOfBlock(block uint32) int { return int(block) % c.Sets }

// Mechanism identifies the reliability mechanism protecting the cache
// against permanently faulty blocks.
type Mechanism int

const (
	// MechanismNone is the unprotected architecture of [1] (Hardy & Puaut,
	// RTS 2015): faulty blocks are simply disabled.
	MechanismNone Mechanism = iota
	// MechanismRW is the Reliable Way: one fixed way per set (way 0) is
	// resilient to permanent faults, so at most W-1 ways can be lost and
	// spatial locality is always captured (Section III.A.1).
	MechanismRW
	// MechanismSRB is the Shared Reliable Buffer: a single fault-resilient
	// block-sized buffer shared by all sets, consulted only when every
	// block of the referenced set is faulty (Section III.A.2).
	MechanismSRB
)

// String returns the short name used in figures and CLI flags.
func (m Mechanism) String() string {
	switch m {
	case MechanismNone:
		return "none"
	case MechanismRW:
		return "rw"
	case MechanismSRB:
		return "srb"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism converts a CLI-style name ("none", "rw", "srb") to a
// Mechanism.
func ParseMechanism(s string) (Mechanism, error) {
	switch s {
	case "none":
		return MechanismNone, nil
	case "rw":
		return MechanismRW, nil
	case "srb":
		return MechanismSRB, nil
	}
	return 0, fmt.Errorf("cache: unknown mechanism %q (want none, rw or srb)", s)
}
