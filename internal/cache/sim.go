package cache

// Sim is a cycle-counting concrete simulator of a set-associative LRU
// instruction cache in the presence of permanently faulty blocks and of an
// optional reliability mechanism.
//
// It implements exactly the architecture of Sections II.A and III.A:
//
//   - a block with at least one faulty bit is disabled, shrinking the LRU
//     stack of its set;
//   - with the Reliable Way, way 0 is fault-resilient, so each set keeps at
//     least one usable way;
//   - with the Shared Reliable Buffer, a single reliable block-sized buffer
//     is looked up (and on a miss, refilled) only when every way of the
//     referenced set is faulty; otherwise the cache look-up is unchanged
//     and the SRB keeps its content.
//
// Sim is used by internal/sim to validate the static analysis: on any
// path and for any fault map, the measured fault-induced misses must not
// exceed the Fault Miss Map bounds.
type Sim struct {
	cfg    Config
	mech   Mechanism
	usable []int
	// stacks[s] is the LRU stack of set s: stacks[s][0] is the most
	// recently used block address. len(stacks[s]) <= usable[s].
	stacks   [][]uint32
	srb      uint32
	srbValid bool

	// Statistics, exported for assertions and reporting.
	Hits      int64 // accesses served by a non-faulty cache block
	Misses    int64 // accesses that paid the memory latency
	SRBHits   int64 // subset of Hits served by the SRB
	SRBMisses int64 // subset of Misses that refilled the SRB
	Time      int64 // accumulated cycles
}

// NewSim builds a simulator for the given configuration, mechanism and
// fault map. The fault map must match the configuration's geometry.
func NewSim(cfg Config, mech Mechanism, fm FaultMap) *Sim {
	usable := make([]int, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		usable[s] = fm.UsableWays(s, mech)
	}
	return &Sim{
		cfg:    cfg,
		mech:   mech,
		usable: usable,
		stacks: make([][]uint32, cfg.Sets),
	}
}

// Config returns the simulated cache configuration.
func (s *Sim) Config() Config { return s.cfg }

// Mechanism returns the simulated reliability mechanism.
func (s *Sim) Mechanism() Mechanism { return s.mech }

// Reset clears cache content and statistics but keeps the fault map.
func (s *Sim) Reset() {
	for i := range s.stacks {
		s.stacks[i] = nil
	}
	s.srbValid = false
	s.Hits, s.Misses, s.SRBHits, s.SRBMisses, s.Time = 0, 0, 0, 0, 0
}

// Access simulates one instruction fetch at the given byte address and
// reports whether it hit (in the cache or in the SRB). Time and counters
// are updated.
func (s *Sim) Access(addr uint32) bool {
	block := s.cfg.BlockAddr(addr)
	set := s.cfg.SetOfBlock(block)
	u := s.usable[set]

	if u == 0 {
		// The whole set is faulty.
		if s.mech == MechanismSRB {
			if s.srbValid && s.srb == block {
				s.Hits++
				s.SRBHits++
				s.Time += s.cfg.HitLatency
				return true
			}
			s.srb = block
			s.srbValid = true
			s.Misses++
			s.SRBMisses++
			s.Time += s.cfg.MissCost()
			return false
		}
		// No protection: the access goes straight to memory.
		s.Misses++
		s.Time += s.cfg.MissCost()
		return false
	}

	stack := s.stacks[set]
	for i, b := range stack {
		if b == block {
			// Hit: move to MRU position.
			copy(stack[1:i+1], stack[:i])
			stack[0] = block
			s.Hits++
			s.Time += s.cfg.HitLatency
			return true
		}
	}
	// Miss: insert at MRU, evict LRU if the (shrunken) stack is full.
	if len(stack) < u {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = block
	s.stacks[set] = stack
	s.Misses++
	s.Time += s.cfg.MissCost()
	return false
}

// AccessAll simulates a sequence of instruction fetches and returns the
// number of misses it produced.
func (s *Sim) AccessAll(addrs []uint32) int64 {
	before := s.Misses
	for _, a := range addrs {
		s.Access(a)
	}
	return s.Misses - before
}

// MissesInSet runs the trace on a fresh copy of the simulator state and
// is a convenience for per-set accounting in tests; it returns the number
// of misses among accesses mapping to the given set.
func (s *Sim) MissesInSet(addrs []uint32, set int) int64 {
	var n int64
	for _, a := range addrs {
		hit := s.Access(a)
		if s.cfg.SetOf(a) == set && !hit {
			n++
		}
	}
	return n
}
