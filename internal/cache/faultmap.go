package cache

import "fmt"

// FaultMap records which physical cache blocks are permanently faulty.
// FaultMap[s][w] is true when way w of set s holds at least one faulty
// SRAM cell and is therefore disabled (Section II.A of the paper).
//
// The exact way index of a faulty block is irrelevant under LRU (the LRU
// stack of a set simply shrinks), but the map keeps per-way resolution so
// the RW mechanism can mask faults in its fixed reliable way (way 0).
type FaultMap [][]bool

// NewFaultMap returns an all-healthy fault map for the given geometry.
func NewFaultMap(sets, ways int) FaultMap {
	fm := make(FaultMap, sets)
	for s := range fm {
		fm[s] = make([]bool, ways)
	}
	return fm
}

// Clone returns a deep copy of the fault map.
func (fm FaultMap) Clone() FaultMap {
	out := make(FaultMap, len(fm))
	for s, ws := range fm {
		out[s] = append([]bool(nil), ws...)
	}
	return out
}

// NumFaulty returns the number of faulty ways in the given set.
func (fm FaultMap) NumFaulty(set int) int {
	n := 0
	for _, f := range fm[set] {
		if f {
			n++
		}
	}
	return n
}

// TotalFaulty returns the total number of faulty blocks in the cache.
func (fm FaultMap) TotalFaulty() int {
	n := 0
	for s := range fm {
		n += fm.NumFaulty(s)
	}
	return n
}

// UsableWays returns the number of ways of the given set that remain
// usable under the given reliability mechanism. With MechanismRW, faults
// affecting way 0 are masked by the reliable way, so the result is always
// at least 1. The SRB does not change the number of usable ways (it sits
// beside the cache), so MechanismSRB behaves like MechanismNone here.
func (fm FaultMap) UsableWays(set int, mech Mechanism) int {
	ways := len(fm[set])
	n := 0
	for w, f := range fm[set] {
		if !f || (mech == MechanismRW && w == 0) {
			n++
		}
	}
	if n > ways {
		n = ways
	}
	return n
}

// String renders the map as one row per set, 'X' for faulty ways.
func (fm FaultMap) String() string {
	out := ""
	for s, ws := range fm {
		out += fmt.Sprintf("set %2d: ", s)
		for _, f := range ws {
			if f {
				out += "X"
			} else {
				out += "."
			}
		}
		out += "\n"
	}
	return out
}
