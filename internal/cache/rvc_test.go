package cache

import (
	"math/rand"
	"testing"
)

func TestRVCFaultFreeMatchesPlainCache(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	rng := rand.New(rand.NewSource(1))
	trace := make([]uint32, 2000)
	for i := range trace {
		trace[i] = uint32(rng.Intn(64)) * 4
	}
	plain := NewSim(cfg, MechanismNone, fm)
	rvc := NewRVCSim(cfg, 4, fm)
	if plain.AccessAll(trace) != rvc.AccessAll(trace) {
		t.Error("fault-free RVC must behave exactly like the plain cache (victim store unused)")
	}
	if rvc.VictimHits != 0 {
		t.Error("victim hits recorded on a fault-free cache")
	}
}

func TestRVCServesFullyFaultySet(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	fm[0][0], fm[0][1] = true, true
	rvc := NewRVCSim(cfg, 2, fm)
	a := uint32(0) // set 0
	if rvc.Access(a) {
		t.Fatal("cold access hit")
	}
	if !rvc.Access(a) {
		t.Fatal("repeated access must hit in the victim store")
	}
	if rvc.VictimHits != 1 {
		t.Errorf("victim hits = %d, want 1", rvc.VictimHits)
	}
	// Two blocks of the dead set fit in a 2-entry victim store.
	b := uint32(4 * 8) // block 4 -> set 0
	rvc.Access(b)
	if !rvc.Access(a) || !rvc.Access(b) {
		t.Error("2-entry victim store must retain both blocks of the dead set")
	}
}

func TestRVCNeverWorseThanNoProtection(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fm := NewFaultMap(cfg.Sets, cfg.Ways)
		for s := range fm {
			for w := range fm[s] {
				fm[s][w] = rng.Intn(3) == 0
			}
		}
		trace := make([]uint32, 1500)
		for i := range trace {
			trace[i] = uint32(rng.Intn(48)) * 4
		}
		plain := NewSim(cfg, MechanismNone, fm)
		rvc := NewRVCSim(cfg, 4, fm)
		if rvc.AccessAll(trace) > plain.AccessAll(trace) {
			t.Fatalf("seed %d: RVC produced more misses than no protection", seed)
		}
	}
}

func TestRVCZeroEntriesEqualsNoProtection(t *testing.T) {
	cfg := Config{Sets: 2, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	fm[1][0] = true
	rng := rand.New(rand.NewSource(3))
	trace := make([]uint32, 800)
	for i := range trace {
		trace[i] = uint32(rng.Intn(32)) * 4
	}
	plain := NewSim(cfg, MechanismNone, fm)
	rvc := NewRVCSim(cfg, 0, fm)
	if plain.AccessAll(trace) != rvc.AccessAll(trace) {
		t.Error("0-entry RVC must equal no protection")
	}
}
