package cache

import "testing"

func TestPaperConfig(t *testing.T) {
	c := PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if got := c.SizeBytes(); got != 1024 {
		t.Errorf("SizeBytes = %d, want 1024 (1KB per Section IV.A)", got)
	}
	if got := c.BlockBits(); got != 128 {
		t.Errorf("BlockBits = %d, want 128 (16-byte lines)", got)
	}
	if got := c.Sets; got != 16 {
		t.Errorf("Sets = %d, want 16 (1KB / (4 ways * 16B))", got)
	}
	if got := c.MissCost(); got != 101 {
		t.Errorf("MissCost = %d, want 101 (1-cycle cache + 100-cycle memory)", got)
	}
	if got := c.MissPenalty(); got != 100 {
		t.Errorf("MissPenalty = %d, want 100", got)
	}
}

func TestConfigValidate(t *testing.T) {
	base := PaperConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sets", func(c *Config) { c.Sets = 0 }},
		{"negative ways", func(c *Config) { c.Ways = -1 }},
		{"zero block", func(c *Config) { c.BlockBytes = 0 }},
		{"non power of two block", func(c *Config) { c.BlockBytes = 12 }},
		{"non power of two sets", func(c *Config) { c.Sets = 3 }},
		{"zero hit latency", func(c *Config) { c.HitLatency = 0 }},
		{"zero mem latency", func(c *Config) { c.MemLatency = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted invalid config %+v", c)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("Validate rejected valid config: %v", err)
	}
}

func TestAddressMapping(t *testing.T) {
	c := PaperConfig()
	// 16-byte blocks: addresses 0..15 share block 0, set 0.
	for addr := uint32(0); addr < 16; addr++ {
		if got := c.BlockAddr(addr); got != 0 {
			t.Fatalf("BlockAddr(%d) = %d, want 0", addr, got)
		}
		if got := c.SetOf(addr); got != 0 {
			t.Fatalf("SetOf(%d) = %d, want 0", addr, got)
		}
	}
	// Block 16 wraps around to set 0 again (16 sets).
	if got := c.SetOf(16 * 16); got != 0 {
		t.Errorf("SetOf(256) = %d, want 0 (wraps around)", got)
	}
	if got := c.SetOf(17 * 16); got != 1 {
		t.Errorf("SetOf(272) = %d, want 1", got)
	}
	// Consecutive blocks map to consecutive sets.
	for b := uint32(0); b < 64; b++ {
		if got := c.SetOfBlock(b); got != int(b)%16 {
			t.Fatalf("SetOfBlock(%d) = %d, want %d", b, got, b%16)
		}
	}
}

func TestMechanismString(t *testing.T) {
	for _, tc := range []struct {
		m    Mechanism
		want string
	}{
		{MechanismNone, "none"},
		{MechanismRW, "rw"},
		{MechanismSRB, "srb"},
	} {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", int(tc.m), got, tc.want)
		}
		back, err := ParseMechanism(tc.want)
		if err != nil || back != tc.m {
			t.Errorf("ParseMechanism(%q) = %v, %v; want %v, nil", tc.want, back, err, tc.m)
		}
	}
	if _, err := ParseMechanism("victim"); err == nil {
		t.Error("ParseMechanism accepted unknown name")
	}
}
