package cache

// Reliable Victim Cache (RVC) — the related-work mechanism of Abella et
// al., "RVC: A mechanism for time-analyzable real-time processors with
// faulty caches" (HiPEAC 2011), reference [19] of the paper.
//
// The RVC is a small fully-associative fault-resilient victim cache that
// supplements sets degraded by faulty lines: blocks evicted from a
// degraded set are kept in the shared victim store, and look-ups probe
// it after the set. [19] evaluated the mechanism by cycle-accurate
// simulation along an already-known worst-case path — it provides no
// static path analysis — so this repository models it in the concrete
// simulator only, as a Monte-Carlo baseline against RW and SRB (see
// examples/rvc). The paper's own comparison point (Section V) is that
// unlike RVC-style evaluation, its analysis identifies the worst path.

// RVCSim is a cycle-counting simulator of a set-associative LRU cache
// backed by a reliable victim cache of a fixed number of entries.
type RVCSim struct {
	cfg    Config
	usable []int
	stacks [][]uint32
	// victim[0] is the most recently used victim entry.
	victim  []uint32
	entries int

	Hits       int64
	Misses     int64
	VictimHits int64
	Time       int64
}

// NewRVCSim builds an RVC simulator with the given number of reliable
// victim entries. Faulty ways shrink their sets exactly as with no
// protection; the victim store is fault-free by construction.
func NewRVCSim(cfg Config, entries int, fm FaultMap) *RVCSim {
	usable := make([]int, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		usable[s] = fm.UsableWays(s, MechanismNone)
	}
	return &RVCSim{
		cfg:     cfg,
		usable:  usable,
		stacks:  make([][]uint32, cfg.Sets),
		entries: entries,
	}
}

// Access simulates one instruction fetch and reports whether it hit in
// the set or in the victim store.
func (s *RVCSim) Access(addr uint32) bool {
	block := s.cfg.BlockAddr(addr)
	set := s.cfg.SetOfBlock(block)
	u := s.usable[set]

	// Probe the set.
	stack := s.stacks[set]
	for i, b := range stack {
		if b == block {
			copy(stack[1:i+1], stack[:i])
			stack[0] = block
			s.Hits++
			s.Time += s.cfg.HitLatency
			return true
		}
	}
	// Probe the victim store.
	for i, b := range s.victim {
		if b == block {
			copy(s.victim[1:i+1], s.victim[:i])
			s.victim[0] = block
			s.Hits++
			s.VictimHits++
			s.Time += s.cfg.HitLatency
			return true
		}
	}

	// Miss. Fill the set if it has usable ways; the evicted victim of a
	// degraded set (or the block itself when the set is dead) goes to
	// the reliable victim store.
	s.Misses++
	s.Time += s.cfg.MissCost()
	degraded := u < s.cfg.Ways
	switch {
	case u == 0:
		if degraded {
			s.fillVictim(block)
		}
	default:
		var evicted uint32
		hasEvicted := false
		if len(stack) < u {
			stack = append(stack, 0)
		} else {
			evicted = stack[len(stack)-1]
			hasEvicted = true
		}
		copy(stack[1:], stack[:len(stack)-1])
		stack[0] = block
		s.stacks[set] = stack
		if degraded && hasEvicted {
			s.fillVictim(evicted)
		}
	}
	return false
}

func (s *RVCSim) fillVictim(block uint32) {
	if s.entries == 0 {
		return
	}
	if len(s.victim) < s.entries {
		s.victim = append(s.victim, 0)
	}
	copy(s.victim[1:], s.victim[:len(s.victim)-1])
	s.victim[0] = block
}

// AccessAll simulates a fetch sequence and returns its miss count.
func (s *RVCSim) AccessAll(addrs []uint32) int64 {
	before := s.Misses
	for _, a := range addrs {
		s.Access(a)
	}
	return s.Misses - before
}
