package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// addr builds the byte address of the first instruction of a memory block.
func addr(cfg Config, block uint32) uint32 { return block * uint32(cfg.BlockBytes) }

func TestSimFaultFreeLRU(t *testing.T) {
	cfg := PaperConfig()
	sim := NewSim(cfg, MechanismNone, NewFaultMap(cfg.Sets, cfg.Ways))

	// Four distinct blocks mapping to set 0 fill its four ways.
	blocks := []uint32{0, 16, 32, 48}
	for _, b := range blocks {
		if sim.Access(addr(cfg, b)) {
			t.Fatalf("cold access to block %d hit", b)
		}
	}
	// All four must now hit.
	for _, b := range blocks {
		if !sim.Access(addr(cfg, b)) {
			t.Fatalf("warm access to block %d missed", b)
		}
	}
	// A fifth block to set 0 evicts the LRU one (block 0 after the re-touch
	// order 0,16,32,48 -> LRU is 0).
	if sim.Access(addr(cfg, 64)) {
		t.Fatal("access to fifth block hit")
	}
	if !sim.Access(addr(cfg, 16)) {
		t.Error("block 16 should have survived")
	}
	if sim.Access(addr(cfg, 0)) {
		t.Error("block 0 should have been evicted (LRU)")
	}
	wantTime := int64(6)*cfg.MissCost() + int64(5)*cfg.HitLatency
	if sim.Time != wantTime {
		t.Errorf("Time = %d, want %d", sim.Time, wantTime)
	}
}

func TestSimIntraBlockSpatialLocality(t *testing.T) {
	cfg := PaperConfig()
	sim := NewSim(cfg, MechanismNone, NewFaultMap(cfg.Sets, cfg.Ways))
	// Sequential 4-byte instruction fetches: one miss per 16-byte block.
	var misses int64
	for a := uint32(0); a < 256; a += 4 {
		if !sim.Access(a) {
			misses++
		}
	}
	if misses != 16 {
		t.Errorf("sequential fetch misses = %d, want 16 (one per block)", misses)
	}
}

func TestSimFaultyWaysShrinkStack(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	fm[0][1] = true
	fm[0][3] = true // set 0 has only 2 usable ways
	sim := NewSim(cfg, MechanismNone, fm)

	// Three distinct blocks in set 0: the first is evicted.
	for _, b := range []uint32{0, 16, 32} {
		sim.Access(addr(cfg, b))
	}
	if !sim.Access(addr(cfg, 32)) || !sim.Access(addr(cfg, 16)) {
		t.Error("two most recent blocks must fit in 2 usable ways")
	}
	if sim.Access(addr(cfg, 0)) {
		t.Error("block 0 must have been evicted from the shrunken set")
	}
	// Other sets are unaffected.
	sim.Access(addr(cfg, 1))
	sim.Access(addr(cfg, 17))
	sim.Access(addr(cfg, 33))
	sim.Access(addr(cfg, 49))
	if !sim.Access(addr(cfg, 1)) {
		t.Error("set 1 must still hold 4 blocks")
	}
}

func TestSimWholeSetFaultyNoProtection(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		fm[5][w] = true
	}
	sim := NewSim(cfg, MechanismNone, fm)
	// Every access to set 5 misses, even repeated ones.
	a := addr(cfg, 5)
	for i := 0; i < 10; i++ {
		if sim.Access(a) {
			t.Fatal("access to fully-faulty set hit without protection")
		}
	}
	if sim.Misses != 10 {
		t.Errorf("Misses = %d, want 10", sim.Misses)
	}
}

func TestSimRWMasksWayZero(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		fm[5][w] = true
	}
	sim := NewSim(cfg, MechanismRW, fm)
	a := addr(cfg, 5)
	if sim.Access(a) {
		t.Fatal("cold access hit")
	}
	for i := 0; i < 9; i++ {
		if !sim.Access(a) {
			t.Fatal("RW must keep one usable way: repeated access should hit")
		}
	}
	// With one usable way, two alternating blocks thrash.
	b := addr(cfg, 5+16)
	sim.Access(b)
	if sim.Access(a) {
		t.Error("direct-mapped behavior: block a must have been evicted by b")
	}
}

func TestSimRWDoesNotMaskOtherWays(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	fm[2][1] = true
	fm[2][2] = true
	simRW := NewSim(cfg, MechanismRW, fm)
	// RW only guarantees way 0: set 2 has 2 usable ways here, same as
	// without protection (the faults are not in way 0).
	if got := fm.UsableWays(2, MechanismRW); got != 2 {
		t.Errorf("UsableWays(RW) = %d, want 2", got)
	}
	if got := fm.UsableWays(2, MechanismNone); got != 2 {
		t.Errorf("UsableWays(None) = %d, want 2", got)
	}
	fm2 := NewFaultMap(cfg.Sets, cfg.Ways)
	fm2[2][0] = true
	if got := fm2.UsableWays(2, MechanismRW); got != 4 {
		t.Errorf("UsableWays with only way 0 faulty under RW = %d, want 4 (masked)", got)
	}
	if got := fm2.UsableWays(2, MechanismNone); got != 3 {
		t.Errorf("UsableWays with way 0 faulty, no protection = %d, want 3", got)
	}
	_ = simRW
}

func TestSimSRBOnlyUsedWhenSetFullyFaulty(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		fm[3][w] = true
	}
	sim := NewSim(cfg, MechanismSRB, fm)

	a := addr(cfg, 3)     // set 3, fully faulty -> SRB
	other := addr(cfg, 4) // set 4, healthy -> normal look-up
	if sim.Access(a) {
		t.Fatal("cold SRB access hit")
	}
	if !sim.Access(a) {
		t.Fatal("repeated SRB access must hit")
	}
	// Accesses to healthy sets do not disturb the SRB.
	sim.Access(other)
	if !sim.Access(a) {
		t.Error("SRB content must survive accesses to healthy sets")
	}
	if sim.SRBHits != 2 || sim.SRBMisses != 1 {
		t.Errorf("SRB stats = %d hits / %d misses, want 2/1", sim.SRBHits, sim.SRBMisses)
	}
	// A different block of another fully-faulty set reloads the SRB.
	for w := 0; w < cfg.Ways; w++ {
		fm[7][w] = true
	}
	sim2 := NewSim(cfg, MechanismSRB, fm)
	sim2.Access(a)
	sim2.Access(addr(cfg, 7)) // reloads SRB
	if sim2.Access(a) {
		t.Error("SRB must have been reloaded by the other faulty set")
	}
}

func TestSimSRBSpatialLocality(t *testing.T) {
	cfg := PaperConfig()
	fm := NewFaultMap(cfg.Sets, cfg.Ways)
	for s := 0; s < cfg.Sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			fm[s][w] = true
		}
	}
	sim := NewSim(cfg, MechanismSRB, fm)
	// Entirely faulty cache: sequential code still only misses once per
	// block thanks to the SRB (this is the "spatial locality preserved"
	// property of Section III.A.2).
	var misses int64
	for a := uint32(0); a < 256; a += 4 {
		if !sim.Access(a) {
			misses++
		}
	}
	if misses != 16 {
		t.Errorf("sequential fetch misses with SRB = %d, want 16", misses)
	}

	// Without protection the same stream misses on every fetch.
	simNone := NewSim(cfg, MechanismNone, fm)
	misses = 0
	for a := uint32(0); a < 256; a += 4 {
		if !simNone.Access(a) {
			misses++
		}
	}
	if misses != 64 {
		t.Errorf("sequential fetch misses without protection = %d, want 64", misses)
	}
}

func TestSimReset(t *testing.T) {
	cfg := PaperConfig()
	sim := NewSim(cfg, MechanismNone, NewFaultMap(cfg.Sets, cfg.Ways))
	sim.Access(0)
	sim.Access(0)
	sim.Reset()
	if sim.Hits != 0 || sim.Misses != 0 || sim.Time != 0 {
		t.Error("Reset did not clear statistics")
	}
	if sim.Access(0) {
		t.Error("Reset did not clear cache content")
	}
}

// TestSimMoreFaultsNeverHelp checks the monotonicity property underlying
// the whole paper: adding faults can only increase the number of misses of
// a fixed trace (for the unprotected cache). This is a prerequisite for
// the FMM to be meaningful.
func TestSimMoreFaultsNeverHelp(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint32, 200)
		for i := range trace {
			trace[i] = uint32(rng.Intn(64)) * 4
		}
		fm := NewFaultMap(cfg.Sets, cfg.Ways)
		prev := int64(-1)
		// Progressively add faults; misses must be non-decreasing.
		order := rng.Perm(cfg.Sets * cfg.Ways)
		for step := 0; step <= len(order); step++ {
			sim := NewSim(cfg, MechanismNone, fm)
			m := sim.AccessAll(trace)
			if prev >= 0 && m < prev {
				return false
			}
			prev = m
			if step < len(order) {
				fm[order[step]/cfg.Ways][order[step]%cfg.Ways] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSimRWDominatesNone checks that on any trace and fault map, the RW
// mechanism never produces more misses than no protection, and SRB never
// produces more misses than no protection (they can only mask faults).
func TestSimMechanismsNeverHurt(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint32, 300)
		for i := range trace {
			trace[i] = uint32(rng.Intn(48)) * 4
		}
		fm := NewFaultMap(cfg.Sets, cfg.Ways)
		for s := 0; s < cfg.Sets; s++ {
			for w := 0; w < cfg.Ways; w++ {
				fm[s][w] = rng.Intn(2) == 0
			}
		}
		none := NewSim(cfg, MechanismNone, fm)
		rw := NewSim(cfg, MechanismRW, fm)
		srb := NewSim(cfg, MechanismSRB, fm)
		mNone := none.AccessAll(trace)
		mRW := rw.AccessAll(trace)
		mSRB := srb.AccessAll(trace)
		return mRW <= mNone && mSRB <= mNone
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFaultMapHelpers(t *testing.T) {
	fm := NewFaultMap(4, 2)
	fm[1][0] = true
	fm[3][0] = true
	fm[3][1] = true
	if got := fm.NumFaulty(0); got != 0 {
		t.Errorf("NumFaulty(0) = %d, want 0", got)
	}
	if got := fm.NumFaulty(3); got != 2 {
		t.Errorf("NumFaulty(3) = %d, want 2", got)
	}
	if got := fm.TotalFaulty(); got != 3 {
		t.Errorf("TotalFaulty = %d, want 3", got)
	}
	cl := fm.Clone()
	cl[0][0] = true
	if fm[0][0] {
		t.Error("Clone is not deep")
	}
	if s := fm.String(); len(s) == 0 {
		t.Error("String is empty")
	}
}
