package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refLRU is an independently-written reference model of a faulty LRU
// cache using timestamps instead of ordered stacks, for differential
// testing of Sim.
type refLRU struct {
	cfg    Config
	usable []int
	last   []map[uint32]int64 // per set: block -> last-use time
	clock  int64
}

func newRefLRU(cfg Config, mech Mechanism, fm FaultMap) *refLRU {
	r := &refLRU{cfg: cfg, usable: make([]int, cfg.Sets), last: make([]map[uint32]int64, cfg.Sets)}
	for s := 0; s < cfg.Sets; s++ {
		r.usable[s] = fm.UsableWays(s, mech)
		r.last[s] = make(map[uint32]int64)
	}
	return r
}

func (r *refLRU) access(addr uint32) bool {
	r.clock++
	block := r.cfg.BlockAddr(addr)
	set := r.cfg.SetOfBlock(block)
	u := r.usable[set]
	if u == 0 {
		return false
	}
	m := r.last[set]
	if _, ok := m[block]; ok {
		m[block] = r.clock
		return true
	}
	if len(m) >= u {
		// Evict the least recently used block.
		var lruBlock uint32
		lruTime := int64(1<<62 - 1)
		for b, t := range m {
			if t < lruTime {
				lruTime, lruBlock = t, b
			}
		}
		delete(m, lruBlock)
	}
	m[block] = r.clock
	return false
}

// TestSimMatchesReferenceModel differentially tests the stack-based
// simulator against the timestamp-based reference on random traces and
// fault maps.
func TestSimMatchesReferenceModel(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 3, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fm := NewFaultMap(cfg.Sets, cfg.Ways)
		for s := range fm {
			for w := range fm[s] {
				fm[s][w] = rng.Intn(4) == 0
			}
		}
		sim := NewSim(cfg, MechanismNone, fm)
		ref := newRefLRU(cfg, MechanismNone, fm)
		for i := 0; i < 1000; i++ {
			addr := uint32(rng.Intn(96)) * 4
			if sim.Access(addr) != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSimRWMatchesReferenceModel repeats the differential test with the
// reliable way masking way-0 faults.
func TestSimRWMatchesReferenceModel(t *testing.T) {
	cfg := Config{Sets: 2, Ways: 4, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fm := NewFaultMap(cfg.Sets, cfg.Ways)
		for s := range fm {
			for w := range fm[s] {
				fm[s][w] = rng.Intn(3) == 0
			}
		}
		sim := NewSim(cfg, MechanismRW, fm)
		ref := newRefLRU(cfg, MechanismRW, fm)
		for i := 0; i < 800; i++ {
			addr := uint32(rng.Intn(64)) * 4
			if sim.Access(addr) != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
