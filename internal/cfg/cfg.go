// Package cfg provides control-flow-graph algorithms — dominators,
// natural-loop detection, reducibility checking — computed from first
// principles on assembled programs.
//
// The program builder (internal/program) records loop structure while
// lowering, so the analyses do not strictly need this package; it exists
// to *verify* that structural metadata against an independent
// computation (the builder's loops must be exactly the CFG's natural
// loops), and to support authoring programs from raw edge lists in the
// future. The WCET analyses refuse CFGs whose loops the two methods
// disagree on.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/program"
)

// Dominators computes the immediate dominator of every block reachable
// from the entry, using the Cooper-Harvey-Kennedy iterative algorithm.
// idom[entry] == entry; unreachable blocks get -1.
func Dominators(p *program.Program) []int {
	rpo := ReversePostOrder(p)
	index := make([]int, len(p.Blocks)) // block -> position in rpo
	for i := range index {
		index[i] = -1
	}
	for i, b := range rpo {
		index[b] = i
	}

	idom := make([]int, len(p.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[p.Entry] = p.Entry

	intersect := func(a, b int) int {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == p.Entry {
				continue
			}
			newIdom := -1
			for _, pr := range p.Blocks[b].Preds {
				if idom[pr] == -1 {
					continue // unprocessed or unreachable
				}
				if newIdom == -1 {
					newIdom = pr
				} else {
					newIdom = intersect(newIdom, pr)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom tree.
func Dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == idom[b] { // reached the entry
			return false
		}
		next := idom[b]
		if next == -1 {
			return false
		}
		b = next
	}
}

// NaturalLoop is a loop detected from a back edge: an edge whose target
// dominates its source.
type NaturalLoop struct {
	Header int
	// Back edges into the header (there may be several for one header).
	Back []program.Edge
	// Blocks is the loop body (header included), sorted.
	Blocks []int
}

// NaturalLoops finds all natural loops of the program. Back edges with
// the same header are merged into one loop, as is conventional.
func NaturalLoops(p *program.Program) []NaturalLoop {
	idom := Dominators(p)
	byHeader := make(map[int]*NaturalLoop)
	var headers []int
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if idom[b.ID] == -1 {
				continue // unreachable
			}
			if Dominates(idom, s, b.ID) {
				l, ok := byHeader[s]
				if !ok {
					l = &NaturalLoop{Header: s}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.Back = append(l.Back, program.Edge{From: b.ID, To: s})
			}
		}
	}
	sort.Ints(headers)
	out := make([]NaturalLoop, 0, len(headers))
	for _, h := range headers {
		l := byHeader[h]
		l.Blocks = loopBody(p, *l)
		out = append(out, *l)
	}
	return out
}

// loopBody computes the natural-loop member set of a back-edge group.
func loopBody(p *program.Program, l NaturalLoop) []int {
	in := map[int]bool{l.Header: true}
	var stack []int
	for _, e := range l.Back {
		if !in[e.From] {
			in[e.From] = true
			stack = append(stack, e.From)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range p.Blocks[n].Preds {
			if !in[q] {
				in[q] = true
				stack = append(stack, q)
			}
		}
	}
	blocks := make([]int, 0, len(in))
	for b := range in {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	return blocks
}

// ReversePostOrder returns the blocks reachable from the entry in
// reverse post-order.
func ReversePostOrder(p *program.Program) []int {
	visited := make([]bool, len(p.Blocks))
	var post []int
	type frame struct {
		node, next int
	}
	var stack []frame
	push := func(n int) {
		visited[n] = true
		stack = append(stack, frame{node: n})
	}
	push(p.Entry)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := p.Blocks[f.node].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				push(s)
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i, n := range post {
		rpo[len(post)-1-i] = n
	}
	return rpo
}

// Reducible reports whether every cycle of the CFG goes through a
// natural-loop back edge (equivalently: removing back edges leaves an
// acyclic graph). Builder-produced programs are reducible by
// construction; irreducible graphs would invalidate the loop-bound
// constraints of IPET.
func Reducible(p *program.Program) bool {
	idom := Dominators(p)
	back := make(map[program.Edge]bool)
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if idom[b.ID] != -1 && Dominates(idom, s, b.ID) {
				back[program.Edge{From: b.ID, To: s}] = true
			}
		}
	}
	// Kahn's algorithm on the graph without back edges.
	indeg := make([]int, len(p.Blocks))
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if !back[program.Edge{From: b.ID, To: s}] {
				indeg[s]++
			}
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range p.Blocks[n].Succs {
			if back[program.Edge{From: n, To: s}] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return seen == len(p.Blocks)
}

// VerifyLoopMetadata cross-checks the builder's loop records against the
// independently computed natural loops: same headers, same back edges,
// same member sets. The WCET analyses rely on this agreement for the
// soundness of loop-bound constraints.
func VerifyLoopMetadata(p *program.Program) error {
	natural := NaturalLoops(p)
	natByHeader := make(map[int]NaturalLoop, len(natural))
	for _, l := range natural {
		natByHeader[l.Header] = l
	}
	if len(natural) != len(p.Loops) {
		return fmt.Errorf("cfg: %d natural loops but %d builder loops", len(natural), len(p.Loops))
	}
	for _, bl := range p.Loops {
		nl, ok := natByHeader[bl.Header]
		if !ok {
			return fmt.Errorf("cfg: builder loop %d header %d is not a natural-loop header", bl.ID, bl.Header)
		}
		if len(nl.Back) != len(bl.Back) {
			return fmt.Errorf("cfg: loop at header %d: %d natural back edges, %d recorded",
				bl.Header, len(nl.Back), len(bl.Back))
		}
		recorded := make(map[program.Edge]bool, len(bl.Back))
		for _, e := range bl.Back {
			recorded[e] = true
		}
		for _, e := range nl.Back {
			if !recorded[e] {
				return fmt.Errorf("cfg: loop at header %d: back edge %v not recorded by builder", bl.Header, e)
			}
		}
		if len(nl.Blocks) != len(bl.Blocks) {
			return fmt.Errorf("cfg: loop at header %d: natural body has %d blocks, builder %d",
				bl.Header, len(nl.Blocks), len(bl.Blocks))
		}
		for i := range nl.Blocks {
			if nl.Blocks[i] != bl.Blocks[i] {
				return fmt.Errorf("cfg: loop at header %d: body mismatch at %d", bl.Header, i)
			}
		}
	}
	return nil
}
