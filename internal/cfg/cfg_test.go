package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/malardalen"
	"repro/internal/progen"
	"repro/internal/program"
)

func TestDominatorsDiamond(t *testing.T) {
	b := program.New("diamond")
	b.Func("main").Ops(1).If(func(then *program.Body) { then.Ops(1) },
		func(els *program.Body) { els.Ops(1) }).Ops(1)
	p := b.MustBuild()
	idom := Dominators(p)
	if idom[p.Entry] != p.Entry {
		t.Error("entry must self-dominate")
	}
	// The join block's immediate dominator is the condition block (the
	// entry, here), not either branch.
	cond := p.Entry
	join := p.Exit
	if idom[join] != cond {
		t.Errorf("idom(join) = %d, want %d", idom[join], cond)
	}
	for _, blk := range p.Blocks {
		if !Dominates(idom, p.Entry, blk.ID) {
			t.Errorf("entry must dominate block %d", blk.ID)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	b := program.New("loop")
	b.Func("main").Loop(3, func(l *program.Body) { l.Ops(1) }).Ops(1)
	p := b.MustBuild()
	idom := Dominators(p)
	h := p.Loops[0].Header
	body := p.Loops[0].BodySucc
	exit := p.Loops[0].ExitSucc
	if !Dominates(idom, h, body) {
		t.Error("header must dominate loop body")
	}
	if !Dominates(idom, h, exit) {
		t.Error("header must dominate loop exit")
	}
	if Dominates(idom, body, h) {
		t.Error("body must not dominate header")
	}
}

func TestNaturalLoopsMatchBuilder(t *testing.T) {
	for _, name := range malardalen.Names() {
		p := malardalen.MustGet(name)
		if err := VerifyLoopMetadata(p); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !Reducible(p) {
			t.Errorf("%s: CFG not reducible", name)
		}
	}
}

func TestNaturalLoopsMatchBuilderRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		if err := VerifyLoopMetadata(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !Reducible(p) {
			t.Fatalf("seed %d: irreducible CFG from structured builder", seed)
		}
	}
}

func TestNestedNaturalLoops(t *testing.T) {
	b := program.New("nest")
	b.Func("main").Loop(2, func(o *program.Body) {
		o.Loop(3, func(i *program.Body) { i.Ops(1) })
	})
	p := b.MustBuild()
	loops := NaturalLoops(p)
	if len(loops) != 2 {
		t.Fatalf("natural loops = %d, want 2", len(loops))
	}
	// The outer loop's body strictly contains the inner loop's body.
	var inner, outer NaturalLoop
	if len(loops[0].Blocks) < len(loops[1].Blocks) {
		inner, outer = loops[0], loops[1]
	} else {
		inner, outer = loops[1], loops[0]
	}
	member := make(map[int]bool)
	for _, blk := range outer.Blocks {
		member[blk] = true
	}
	for _, blk := range inner.Blocks {
		if !member[blk] {
			t.Errorf("inner block %d outside outer loop", blk)
		}
	}
}

func TestReversePostOrderProperties(t *testing.T) {
	p := malardalen.MustGet("adpcm")
	rpo := ReversePostOrder(p)
	pos := make(map[int]int, len(rpo))
	for i, b := range rpo {
		pos[b] = i
	}
	if rpo[0] != p.Entry {
		t.Error("RPO must start at the entry")
	}
	idom := Dominators(p)
	back := 0
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if Dominates(idom, s, b.ID) {
				back++
				continue // back edges go against RPO by definition
			}
			if pos[s] < pos[b.ID] {
				t.Errorf("forward edge %d->%d goes against RPO", b.ID, s)
			}
		}
	}
	if back != len(p.Loops) {
		t.Errorf("%d back edges, %d loops", back, len(p.Loops))
	}
}
