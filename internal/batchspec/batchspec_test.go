package batchspec

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/malardalen"
)

func parse(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("Parse(%s): %v", s, err)
	}
	return spec
}

func TestParseDefaults(t *testing.T) {
	spec := parse(t, `{"pfails": [1e-4]}`)
	if len(spec.Benchmarks) != len(malardalen.Names()) {
		t.Errorf("default benchmarks %d, want the whole suite (%d)", len(spec.Benchmarks), len(malardalen.Names()))
	}
	if len(spec.Mechanisms) != 3 {
		t.Errorf("default mechanisms %v, want all three", spec.Mechanisms)
	}
	if len(spec.Targets) != 1 || spec.Targets[0] != core.DefaultTargetExceedance {
		t.Errorf("default targets %v, want [%g]", spec.Targets, core.DefaultTargetExceedance)
	}
	if spec.Cache != (cache.Config{}) {
		t.Errorf("default cache %+v, want the zero value (engine default)", spec.Cache)
	}
	if spec.ExactConvolve || spec.Workers != 0 || spec.MaxSupport != 0 || spec.Coarsen != dist.CoarsenLeastError {
		t.Errorf("unexpected non-defaults: %+v", spec)
	}
}

func TestParseFullSpec(t *testing.T) {
	spec := parse(t, `{
		"benchmarks": ["bs", "fibcall"],
		"pfails": [1e-5, 1e-3],
		"mechanisms": ["srb", "none"],
		"targets": [1e-9, 1e-15],
		"cache": {"sets": 8, "ways": 2, "block_bytes": 8, "hit_latency": 1, "mem_latency": 10},
		"max_support": 64,
		"coarsen": "keep-heaviest",
		"exact_convolve": true,
		"workers": 3
	}`)
	if got := spec.Mechanisms; len(got) != 2 || got[0] != cache.MechanismSRB || got[1] != cache.MechanismNone {
		t.Errorf("mechanisms %v do not preserve spec order", got)
	}
	if spec.Cache.Sets != 8 || spec.Cache.MemLatency != 10 {
		t.Errorf("cache not decoded: %+v", spec.Cache)
	}
	if !spec.ExactConvolve || spec.Workers != 3 || spec.Coarsen != dist.CoarsenKeepHeaviest {
		t.Errorf("spec knobs not decoded: %+v", spec)
	}
	if n := spec.NumRows(); n != 2*2*2*2 {
		t.Errorf("NumRows %d, want 16", n)
	}

	// The grid order is pfails, then mechanisms, then targets.
	q := spec.Queries()
	if len(q) != 8 {
		t.Fatalf("%d queries per benchmark, want 8", len(q))
	}
	want := []core.Query{
		{Pfail: 1e-5, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-9},
		{Pfail: 1e-5, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-15},
		{Pfail: 1e-5, Mechanism: cache.MechanismNone, TargetExceedance: 1e-9},
		{Pfail: 1e-5, Mechanism: cache.MechanismNone, TargetExceedance: 1e-15},
		{Pfail: 1e-3, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-9},
		{Pfail: 1e-3, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-15},
		{Pfail: 1e-3, Mechanism: cache.MechanismNone, TargetExceedance: 1e-9},
		{Pfail: 1e-3, Mechanism: cache.MechanismNone, TargetExceedance: 1e-15},
	}
	for i, w := range want {
		g := q[i]
		if g.Pfail != w.Pfail || g.Mechanism != w.Mechanism || g.TargetExceedance != w.TargetExceedance {
			t.Errorf("query %d = %+v, want grid point %+v", i, g, w)
		}
		if g.MaxSupport != 64 || g.Coarsen != dist.CoarsenKeepHeaviest || g.Cache != spec.Cache {
			t.Errorf("query %d does not carry the spec-level knobs: %+v", i, g)
		}
	}

	opt := spec.EngineOptions(7)
	if opt.Workers != 3 || !opt.ExactConvolve {
		t.Errorf("EngineOptions: spec workers must override the caller default: %+v", opt)
	}
	if opt := parse(t, `{"pfails": [1e-4]}`).EngineOptions(7); opt.Workers != 7 {
		t.Errorf("EngineOptions: omitted workers must defer to the caller: %+v", opt)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, spec, want string }{
		{"no pfails", `{"benchmarks": ["bs"]}`, "pfails must be non-empty"},
		{"bad pfail", `{"pfails": [2]}`, "outside [0,1]"},
		{"bad target", `{"pfails": [1e-4], "targets": [0]}`, "outside (0,1)"},
		{"bad mechanism", `{"pfails": [1e-4], "mechanisms": ["bogus"]}`, "unknown mechanism"},
		{"bad benchmark", `{"pfails": [1e-4], "benchmarks": ["nope"]}`, "unknown benchmark"},
		{"bad max_support", `{"pfails": [1e-4], "max_support": 1}`, "at least 2 support points"},
		{"bad coarsen", `{"pfails": [1e-4], "coarsen": "bogus"}`, "unknown coarsening strategy"},
		{"bad workers", `{"pfails": [1e-4], "workers": -1}`, "workers -1 is negative"},
		{"bad cache", `{"pfails": [1e-4], "cache": {"sets": 3, "ways": 1, "block_bytes": 8, "hit_latency": 1, "mem_latency": 10}}`, "power of two"},
		{"unknown field", `{"pfails": [1e-4], "wat": 1}`, "unknown field"},
		{"trailing data", `{"pfails": [1e-4]} {"pfails": [1e-4]}`, "trailing data"},
		{"syntax", `{`, "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestRowOf(t *testing.T) {
	q := core.Query{Pfail: 1e-4, Mechanism: cache.MechanismRW, TargetExceedance: 1e-12}
	r := &core.Result{FaultFreeWCET: 100, PWCET: 250}
	row := RowOf("bs", q, r)
	want := Row{Benchmark: "bs", Pfail: 1e-4, Mechanism: "rw", Target: 1e-12, FaultFreeWCET: 100, PWCET: 250}
	if row != want {
		t.Errorf("RowOf = %+v, want %+v", row, want)
	}
	rows := Rows("bs", []core.Query{q}, []*core.Result{r})
	if len(rows) != 1 || rows[0] != want {
		t.Errorf("Rows = %+v", rows)
	}
}
