package batchspec

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/malardalen"
)

func parse(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("Parse(%s): %v", s, err)
	}
	return spec
}

func TestParseDefaults(t *testing.T) {
	spec := parse(t, `{"pfails": [1e-4]}`)
	if len(spec.Benchmarks) != len(malardalen.Names()) {
		t.Errorf("default benchmarks %d, want the whole suite (%d)", len(spec.Benchmarks), len(malardalen.Names()))
	}
	if len(spec.Mechanisms) != 3 {
		t.Errorf("default mechanisms %v, want all three", spec.Mechanisms)
	}
	if len(spec.Targets) != 1 || spec.Targets[0] != core.DefaultTargetExceedance {
		t.Errorf("default targets %v, want [%g]", spec.Targets, core.DefaultTargetExceedance)
	}
	if spec.Cache != (cache.Config{}) {
		t.Errorf("default cache %+v, want the zero value (engine default)", spec.Cache)
	}
	if spec.ExactConvolve || spec.Workers != 0 || spec.MaxSupport != 0 || spec.Coarsen != dist.CoarsenLeastError {
		t.Errorf("unexpected non-defaults: %+v", spec)
	}
}

func TestParseFullSpec(t *testing.T) {
	spec := parse(t, `{
		"benchmarks": ["bs", "fibcall"],
		"pfails": [1e-5, 1e-3],
		"mechanisms": ["srb", "none"],
		"targets": [1e-9, 1e-15],
		"cache": {"sets": 8, "ways": 2, "block_bytes": 8, "hit_latency": 1, "mem_latency": 10},
		"max_support": 64,
		"coarsen": "keep-heaviest",
		"exact_convolve": true,
		"workers": 3
	}`)
	if got := spec.Mechanisms; len(got) != 2 || got[0] != cache.MechanismSRB || got[1] != cache.MechanismNone {
		t.Errorf("mechanisms %v do not preserve spec order", got)
	}
	if spec.Cache.Sets != 8 || spec.Cache.MemLatency != 10 {
		t.Errorf("cache not decoded: %+v", spec.Cache)
	}
	if !spec.ExactConvolve || spec.Workers != 3 || spec.Coarsen != dist.CoarsenKeepHeaviest {
		t.Errorf("spec knobs not decoded: %+v", spec)
	}
	if n := spec.NumRows(); n != 2*2*2*2 {
		t.Errorf("NumRows %d, want 16", n)
	}

	// The grid order is pfails, then mechanisms, then targets.
	q := spec.Queries()
	if len(q) != 8 {
		t.Fatalf("%d queries per benchmark, want 8", len(q))
	}
	want := []core.Query{
		{Pfail: 1e-5, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-9},
		{Pfail: 1e-5, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-15},
		{Pfail: 1e-5, Mechanism: cache.MechanismNone, TargetExceedance: 1e-9},
		{Pfail: 1e-5, Mechanism: cache.MechanismNone, TargetExceedance: 1e-15},
		{Pfail: 1e-3, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-9},
		{Pfail: 1e-3, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-15},
		{Pfail: 1e-3, Mechanism: cache.MechanismNone, TargetExceedance: 1e-9},
		{Pfail: 1e-3, Mechanism: cache.MechanismNone, TargetExceedance: 1e-15},
	}
	for i, w := range want {
		g := q[i]
		if g.Pfail != w.Pfail || g.Mechanism != w.Mechanism || g.TargetExceedance != w.TargetExceedance {
			t.Errorf("query %d = %+v, want grid point %+v", i, g, w)
		}
		if g.MaxSupport != 64 || g.Coarsen != dist.CoarsenKeepHeaviest || g.Cache != spec.Cache {
			t.Errorf("query %d does not carry the spec-level knobs: %+v", i, g)
		}
	}

	opt := spec.EngineOptions(7)
	if opt.Workers != 3 || !opt.ExactConvolve {
		t.Errorf("EngineOptions: spec workers must override the caller default: %+v", opt)
	}
	if opt := parse(t, `{"pfails": [1e-4]}`).EngineOptions(7); opt.Workers != 7 {
		t.Errorf("EngineOptions: omitted workers must defer to the caller: %+v", opt)
	}
}

// TestParseFaultModels covers the fault_model axis gating and the grid
// expansion order with a lambda axis present.
func TestParseFaultModels(t *testing.T) {
	// Default: permanent, byte-compatible with pre-scenario specs.
	spec := parse(t, `{"pfails": [1e-4]}`)
	if spec.FaultModel != fault.KindPermanent || len(spec.Lambdas) != 0 {
		t.Errorf("default fault model %v lambdas %v, want permanent with no lambda axis", spec.FaultModel, spec.Lambdas)
	}
	if q := spec.Queries(); q[0].Scenario != nil {
		t.Errorf("permanent sweep query carries a scenario %v, want the legacy nil spelling", q[0].Scenario)
	}

	// Transient: lambda axis only.
	spec = parse(t, `{"fault_model": "transient", "lambdas": [1e-12, 1e-10], "mechanisms": ["none"], "benchmarks": ["bs"]}`)
	if spec.FaultModel != fault.KindTransient {
		t.Fatalf("fault model %v, want transient", spec.FaultModel)
	}
	if n := spec.NumRows(); n != 2 {
		t.Errorf("NumRows %d, want 2 (two lambdas, one mech, one target, one benchmark)", n)
	}
	q := spec.Queries()
	if len(q) != 2 || q[0].Scenario != (fault.Transient{Lambda: 1e-12}) || q[1].Scenario != (fault.Transient{Lambda: 1e-10}) {
		t.Errorf("transient queries = %+v", q)
	}
	if q[0].Pfail != 0 {
		t.Errorf("transient query leaked a pfail %g", q[0].Pfail)
	}

	// Combined: full pfails x lambdas product, pfails outermost.
	spec = parse(t, `{
		"fault_model": "combined",
		"pfails": [1e-5, 1e-3],
		"lambdas": [0, 1e-10],
		"mechanisms": ["srb"],
		"benchmarks": ["bs"]
	}`)
	if n := spec.NumRows(); n != 4 {
		t.Errorf("NumRows %d, want 4", n)
	}
	q = spec.Queries()
	want := []fault.Scenario{
		fault.Combined{Pfail: 1e-5, Lambda: 0},
		fault.Combined{Pfail: 1e-5, Lambda: 1e-10},
		fault.Combined{Pfail: 1e-3, Lambda: 0},
		fault.Combined{Pfail: 1e-3, Lambda: 1e-10},
	}
	for i, w := range want {
		if q[i].Scenario != w {
			t.Errorf("combined query %d scenario %v, want %v (pfails outermost, then lambdas)", i, q[i].Scenario, w)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, spec, want string }{
		{"no pfails", `{"benchmarks": ["bs"]}`, "pfails must be non-empty"},
		{"bad pfail", `{"pfails": [2]}`, "outside [0,1]"},
		{"bad target", `{"pfails": [1e-4], "targets": [0]}`, "outside (0,1)"},
		{"bad mechanism", `{"pfails": [1e-4], "mechanisms": ["bogus"]}`, "unknown mechanism"},
		{"bad benchmark", `{"pfails": [1e-4], "benchmarks": ["nope"]}`, "unknown benchmark"},
		{"bad max_support", `{"pfails": [1e-4], "max_support": 1}`, "at least 2 support points"},
		{"bad coarsen", `{"pfails": [1e-4], "coarsen": "bogus"}`, "unknown coarsening strategy"},
		{"bad workers", `{"pfails": [1e-4], "workers": -1}`, "workers -1 is negative"},
		{"bad cache", `{"pfails": [1e-4], "cache": {"sets": 3, "ways": 1, "block_bytes": 8, "hit_latency": 1, "mem_latency": 10}}`, "power of two"},
		{"unknown field", `{"pfails": [1e-4], "wat": 1}`, "unknown field"},
		{"trailing data", `{"pfails": [1e-4]} {"pfails": [1e-4]}`, "trailing data"},
		{"syntax", `{`, "unexpected EOF"},
		// The classic typo: the error must name the offending key and
		// list the real field names, so "lamda" is a 2-second fix.
		{"lamda typo", `{"fault_model": "transient", "lamda": [1e-10]}`, `unknown field "lamda"`},
		{"lamda typo lists fields", `{"fault_model": "transient", "lamda": [1e-10]}`, "lambdas"},
		{"bad fault model", `{"fault_model": "bogus", "pfails": [1e-4]}`, "unknown fault model"},
		{"bad lambda", `{"fault_model": "transient", "lambdas": [-1]}`, "finite rate"},
		{"permanent with lambdas", `{"pfails": [1e-4], "lambdas": [1e-10]}`, "lambdas are meaningless"},
		{"transient with pfails", `{"fault_model": "transient", "lambdas": [1e-10], "pfails": [1e-4]}`, "pfails are meaningless"},
		{"transient without lambdas", `{"fault_model": "transient"}`, "lambdas must be non-empty"},
		{"combined without pfails", `{"fault_model": "combined", "lambdas": [1e-10]}`, "pfails must be non-empty"},
		{"combined without lambdas", `{"fault_model": "combined", "pfails": [1e-4]}`, "lambdas must be non-empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestRowOf(t *testing.T) {
	q := core.Query{Pfail: 1e-4, Mechanism: cache.MechanismRW, TargetExceedance: 1e-12}
	r := &core.Result{FaultFreeWCET: 100, PWCET: 250}
	row := RowOf("bs", q, r)
	want := Row{Benchmark: "bs", Pfail: 1e-4, Mechanism: "rw", Target: 1e-12, FaultFreeWCET: 100, PWCET: 250}
	if row != want {
		t.Errorf("RowOf = %+v, want %+v", row, want)
	}
	rows := Rows("bs", []core.Query{q}, []*core.Result{r})
	if len(rows) != 1 || rows[0] != want {
		t.Errorf("Rows = %+v", rows)
	}
}

// TestRowWireCompatibility pins the NDJSON wire format: permanent rows
// marshal byte-identically to the pre-scenario schema (no fault_model
// or lambda keys), while transient/combined rows append the two keys
// after pfail.
func TestRowWireCompatibility(t *testing.T) {
	r := &core.Result{FaultFreeWCET: 100, PWCET: 250}

	perm := RowOf("bs", core.Query{Pfail: 1e-4, Mechanism: cache.MechanismRW, TargetExceedance: 1e-12}, r)
	b, err := json.Marshal(perm)
	if err != nil {
		t.Fatal(err)
	}
	const wantPerm = `{"benchmark":"bs","pfail":0.0001,"mechanism":"rw","target":1e-12,"fault_free_wcet":100,"pwcet":250}`
	if string(b) != wantPerm {
		t.Errorf("permanent row wire bytes changed:\n got %s\nwant %s", b, wantPerm)
	}

	tq := core.Query{Scenario: fault.Transient{Lambda: 1e-10}, Mechanism: cache.MechanismNone, TargetExceedance: 1e-12}
	trans := RowOf("bs", tq, r)
	if trans.FaultModel != "transient" || trans.Lambda != 1e-10 || trans.Pfail != 0 {
		t.Errorf("transient row = %+v", trans)
	}
	b, err = json.Marshal(trans)
	if err != nil {
		t.Fatal(err)
	}
	// pfail stays in the row even at 0 (it has no omitempty — permanent
	// pfail=0 rows must keep printing it); the new keys follow it.
	const wantTrans = `{"benchmark":"bs","pfail":0,"fault_model":"transient","lambda":1e-10,"mechanism":"none","target":1e-12,"fault_free_wcet":100,"pwcet":250}`
	if string(b) != wantTrans {
		t.Errorf("transient row wire bytes:\n got %s\nwant %s", b, wantTrans)
	}

	// A combined grid point on the lambda=0 edge keeps its fault_model
	// (the row is still a combined-sweep row) but omits the zero lambda.
	cq := core.Query{Scenario: fault.Combined{Pfail: 1e-3, Lambda: 0}, Mechanism: cache.MechanismSRB, TargetExceedance: 1e-12}
	comb := RowOf("bs", cq, r)
	b, err = json.Marshal(comb)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); !strings.Contains(got, `"fault_model":"combined"`) || strings.Contains(got, `"lambda"`) {
		t.Errorf("combined lambda=0 row = %s, want fault_model present and lambda omitted", got)
	}
	if !strings.Contains(string(b), `"pfail":0.001`) {
		t.Errorf("combined row lost its pfail: %s", b)
	}
}
