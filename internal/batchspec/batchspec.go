// Package batchspec defines the JSON sweep specification and the row
// format shared by cmd/pwcet -batch and the pwcetd analysis service
// (internal/serve). Both front ends parse the same wire format with the
// same validation and expand it to the same query grid — benchmarks
// outermost, then pfails x lambdas x mechanisms x targets — so a sweep
// streamed by the service is byte-identical, row for row, to the same
// sweep run through the CLI.
//
// The specification is a single JSON object:
//
//	{
//	  "benchmarks": ["adpcm", "crc"],          // omitted = whole suite
//	  "fault_model": "permanent",              // or "transient", "combined"
//	  "pfails": [1e-6, 1e-5, 1e-4, 1e-3],      // permanent/combined: required
//	  "lambdas": [1e-12, 1e-10],               // transient/combined: required
//	  "mechanisms": ["none", "rw", "srb"],     // omitted = all three
//	  "targets": [1e-15],                      // omitted = [1e-15]
//	  "cache": {"sets": 16, "ways": 4, "block_bytes": 16,
//	            "hit_latency": 1, "mem_latency": 100}, // omitted = paper cache
//	  "max_support": 4096,                     // omitted = default
//	  "coarsen": "least-error",                // or "keep-heaviest"
//	  "exact_convolve": false,                 // exact convolution fold
//	  "workers": 0                             // 0/omitted = caller's default
//	}
//
// fault_model selects the sweep's fault scenario family (default
// "permanent", the paper's boot-time model). It gates the two
// parameter axes strictly: a permanent sweep must not set lambdas, a
// transient sweep must not set pfails, and a combined sweep must set
// both — a sweep can never silently analyze a default along an axis
// the model does not have. Unknown spec fields are rejected with an
// error naming the offending key, so a typo like "lamda" fails loudly.
package batchspec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/malardalen"
)

// Cache is the JSON wire form of a cache geometry, with the stable
// field names of the -batch specification and the pwcet JSON reports.
type Cache struct {
	Sets       int   `json:"sets"`
	Ways       int   `json:"ways"`
	BlockBytes int   `json:"block_bytes"`
	HitLatency int64 `json:"hit_latency"`
	MemLatency int64 `json:"mem_latency"`
}

// Config converts the wire form to the analysis configuration.
func (c Cache) Config() cache.Config {
	return cache.Config{Sets: c.Sets, Ways: c.Ways, BlockBytes: c.BlockBytes,
		HitLatency: c.HitLatency, MemLatency: c.MemLatency}
}

// FromConfig converts an analysis configuration to the wire form.
func FromConfig(c cache.Config) Cache {
	return Cache{Sets: c.Sets, Ways: c.Ways, BlockBytes: c.BlockBytes,
		HitLatency: c.HitLatency, MemLatency: c.MemLatency}
}

// specJSON is the wire format of the sweep specification.
type specJSON struct {
	Benchmarks    []string  `json:"benchmarks"`
	FaultModel    string    `json:"fault_model"`
	Pfails        []float64 `json:"pfails"`
	Lambdas       []float64 `json:"lambdas"`
	Mechanisms    []string  `json:"mechanisms"`
	Targets       []float64 `json:"targets"`
	Cache         *Cache    `json:"cache"`
	MaxSupport    int       `json:"max_support"`
	Coarsen       string    `json:"coarsen"`
	ExactConvolve bool      `json:"exact_convolve"`
	Workers       int       `json:"workers"`
}

// specFields lists the known wire fields, quoted by the unknown-field
// error so a typo'd spec shows what would have been accepted.
const specFields = "benchmarks, fault_model, pfails, lambdas, mechanisms, targets, cache, max_support, coarsen, exact_convolve, workers"

// Spec is a parsed and validated sweep specification. Every field is
// fully resolved: defaults applied, names verified, enums parsed.
type Spec struct {
	// Benchmarks are the suite benchmarks to sweep, in specification
	// order (the whole suite when the spec omitted them).
	Benchmarks []string
	// FaultModel is the sweep's fault scenario family. It gates which
	// of the Pfails/Lambdas axes the spec populates: permanent sweeps
	// have no Lambdas, transient sweeps no Pfails, combined sweeps
	// both.
	FaultModel fault.Kind
	// Pfails, Lambdas, Mechanisms and Targets span the per-benchmark
	// query grid, expanded in that nesting order by Queries.
	Pfails     []float64
	Lambdas    []float64
	Mechanisms []cache.Mechanism
	Targets    []float64
	// Cache is the geometry of every query; the zero value selects the
	// engine default (the paper cache).
	Cache cache.Config
	// MaxSupport and Coarsen configure the convolution support cap.
	MaxSupport int
	Coarsen    dist.CoarsenStrategy
	// ExactConvolve routes every query through the exact convolution
	// fold (EngineOptions.ExactConvolve) — the differential escape
	// hatch for validating the optimized reduction.
	ExactConvolve bool
	// Workers is the worker-pool bound for the sweep's engines; 0
	// defers to the caller (the -workers flag or the server default).
	Workers int
}

// Parse decodes and validates a sweep specification. Unknown fields,
// trailing data and out-of-domain values are rejected with errors that
// name the offending field.
func Parse(r io.Reader) (*Spec, error) {
	var wire specJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		// encoding/json reports unknown fields as `json: unknown field
		// "lamda"`; rewrite that into an error that names the key as a
		// spec problem and shows the accepted fields.
		if name, ok := unknownFieldName(err); ok {
			return nil, fmt.Errorf("unknown field %q in spec (known fields: %s)", name, specFields)
		}
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the specification object")
	}

	kind := fault.KindPermanent
	if wire.FaultModel != "" {
		var err error
		if kind, err = fault.ParseKind(wire.FaultModel); err != nil {
			return nil, err
		}
	}
	// The fault model strictly gates the two parameter axes: the spec
	// must populate exactly the axes the model has, so a sweep can
	// never silently run a default along a missing axis.
	needPfails := kind != fault.KindTransient
	needLambdas := kind != fault.KindPermanent
	switch {
	case needPfails && len(wire.Pfails) == 0:
		return nil, fmt.Errorf("pfails must be non-empty for fault_model %q", kind)
	case !needPfails && len(wire.Pfails) > 0:
		return nil, fmt.Errorf("pfails are meaningless for fault_model %q (only permanent and combined sweeps have a pfail axis)", kind)
	case needLambdas && len(wire.Lambdas) == 0:
		return nil, fmt.Errorf("lambdas must be non-empty for fault_model %q", kind)
	case !needLambdas && len(wire.Lambdas) > 0:
		return nil, fmt.Errorf("lambdas are meaningless for fault_model %q (only transient and combined sweeps have a lambda axis)", kind)
	}
	for _, pf := range wire.Pfails {
		if pf < 0 || pf > 1 || math.IsNaN(pf) {
			return nil, fmt.Errorf("pfail %g outside [0,1]", pf)
		}
	}
	for _, la := range wire.Lambdas {
		if la < 0 || math.IsNaN(la) || math.IsInf(la, 0) {
			return nil, fmt.Errorf("lambda %g must be a finite rate >= 0", la)
		}
	}
	spec := &Spec{
		Benchmarks:    wire.Benchmarks,
		FaultModel:    kind,
		Pfails:        wire.Pfails,
		Lambdas:       wire.Lambdas,
		Targets:       wire.Targets,
		MaxSupport:    wire.MaxSupport,
		ExactConvolve: wire.ExactConvolve,
		Workers:       wire.Workers,
	}
	if len(spec.Targets) == 0 {
		spec.Targets = []float64{core.DefaultTargetExceedance}
	}
	for _, tg := range spec.Targets {
		if tg <= 0 || tg >= 1 || math.IsNaN(tg) {
			return nil, fmt.Errorf("target %g outside (0,1)", tg)
		}
	}
	if wire.Cache != nil {
		spec.Cache = wire.Cache.Config()
		if err := spec.Cache.Validate(); err != nil {
			return nil, err
		}
	}
	if spec.MaxSupport != 0 && spec.MaxSupport < 2 {
		return nil, fmt.Errorf("max_support %d: need at least 2 support points (or 0 for the default)", spec.MaxSupport)
	}
	if wire.Coarsen != "" {
		s, err := dist.ParseCoarsenStrategy(wire.Coarsen)
		if err != nil {
			return nil, err
		}
		spec.Coarsen = s
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("workers %d is negative (0 means the caller's default)", spec.Workers)
	}
	if len(spec.Benchmarks) == 0 {
		spec.Benchmarks = malardalen.Names()
	}
	for _, name := range spec.Benchmarks {
		if _, err := malardalen.Get(name); err != nil {
			return nil, err
		}
	}
	if len(wire.Mechanisms) == 0 {
		wire.Mechanisms = []string{"none", "rw", "srb"}
	}
	spec.Mechanisms = make([]cache.Mechanism, len(wire.Mechanisms))
	for i, s := range wire.Mechanisms {
		m, err := cache.ParseMechanism(s)
		if err != nil {
			return nil, err
		}
		spec.Mechanisms[i] = m
	}
	return spec, nil
}

// unknownFieldName extracts the field name of encoding/json's
// DisallowUnknownFields error ("json: unknown field \"lamda\"").
func unknownFieldName(err error) (string, bool) {
	const prefix = `json: unknown field "`
	msg := err.Error()
	if !strings.HasPrefix(msg, prefix) || !strings.HasSuffix(msg, `"`) {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(msg, prefix), `"`), true
}

// axis returns the grid values of one scenario axis: the parsed values
// when the fault model has the axis, a single zero point otherwise, so
// the grid expansion below is uniform across fault models.
func axis(values []float64) []float64 {
	if len(values) == 0 {
		return []float64{0}
	}
	return values
}

// scenarioOf builds one grid point's query scenario. Permanent sweeps
// return nil — the legacy Query.Pfail spelling — which keeps the
// permanent wire rows and analysis path byte-identical to the
// pre-scenario format.
func (s *Spec) scenarioOf(pf, la float64) fault.Scenario {
	switch s.FaultModel {
	case fault.KindPermanent:
		return nil
	case fault.KindTransient:
		return fault.Transient{Lambda: la}
	case fault.KindCombined:
		return fault.Combined{Pfail: pf, Lambda: la}
	default:
		panic(fmt.Sprintf("batchspec: unhandled fault model %v", s.FaultModel))
	}
}

// Queries expands the per-benchmark query grid in the canonical order:
// pfails outermost, then lambdas, then mechanisms, then targets (a
// fault model without one of the first two axes simply skips it). Every
// benchmark of the sweep runs this same grid on its own engine.
func (s *Spec) Queries() []core.Query {
	pfails, lambdas := axis(s.Pfails), axis(s.Lambdas)
	queries := make([]core.Query, 0, len(pfails)*len(lambdas)*len(s.Mechanisms)*len(s.Targets))
	for _, pf := range pfails {
		for _, la := range lambdas {
			for _, m := range s.Mechanisms {
				for _, tg := range s.Targets {
					q := core.Query{
						Cache:            s.Cache,
						Mechanism:        m,
						TargetExceedance: tg,
						MaxSupport:       s.MaxSupport,
						Coarsen:          s.Coarsen,
					}
					if scn := s.scenarioOf(pf, la); scn != nil {
						q.Scenario = scn
					} else {
						q.Pfail = pf
					}
					queries = append(queries, q)
				}
			}
		}
	}
	return queries
}

// EngineOptions returns the engine configuration the sweep's queries
// assume. workers is the caller's default worker bound, used when the
// specification left its own workers field at 0.
func (s *Spec) EngineOptions(workers int) core.EngineOptions {
	if s.Workers != 0 {
		workers = s.Workers
	}
	return core.EngineOptions{Workers: workers, ExactConvolve: s.ExactConvolve}
}

// NumRows is the total number of result rows the sweep produces.
func (s *Spec) NumRows() int {
	return len(s.Benchmarks) * len(axis(s.Pfails)) * len(axis(s.Lambdas)) *
		len(s.Mechanisms) * len(s.Targets)
}

// Row is one sweep point's outcome — the JSON row format of
// cmd/pwcet -batch -json and of the service's NDJSON stream. The field
// set and order are part of the byte-identity contract between the two
// front ends; the scenario fields are omitted when empty so permanent
// sweeps keep the historical row bytes.
type Row struct {
	Benchmark     string  `json:"benchmark"`
	Pfail         float64 `json:"pfail"`
	FaultModel    string  `json:"fault_model,omitempty"`
	Lambda        float64 `json:"lambda,omitempty"`
	Mechanism     string  `json:"mechanism"`
	Target        float64 `json:"target"`
	FaultFreeWCET int64   `json:"fault_free_wcet"`
	PWCET         int64   `json:"pwcet"`
	// Degraded marks a row produced by the engine's degraded mode (a
	// soft per-query deadline expired and the analysis reran under a
	// tighter support cap — still a sound upper bound, just less tight;
	// see core.Result.Degraded). Appended with omitempty so every
	// non-degraded row keeps the historical bytes.
	Degraded bool `json:"degraded,omitempty"`
}

// RowOf builds the row of one (benchmark, query) sweep point.
func RowOf(benchmark string, q core.Query, r *core.Result) Row {
	row := Row{
		Benchmark:     benchmark,
		Pfail:         q.Pfail,
		Mechanism:     q.Mechanism.String(),
		Target:        q.TargetExceedance,
		FaultFreeWCET: r.FaultFreeWCET,
		PWCET:         r.PWCET,
		Degraded:      r.Degraded,
	}
	if q.Scenario != nil {
		pf, la := fault.Components(q.Scenario)
		row.Pfail = pf
		row.FaultModel = q.Scenario.Kind().String()
		row.Lambda = la
	}
	return row
}

// Rows converts one benchmark's batch results, in Queries order, to
// rows.
func Rows(benchmark string, queries []core.Query, results []*core.Result) []Row {
	rows := make([]Row, len(results))
	for i, r := range results {
		rows[i] = RowOf(benchmark, queries[i], r)
	}
	return rows
}
