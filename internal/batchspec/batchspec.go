// Package batchspec defines the JSON sweep specification and the row
// format shared by cmd/pwcet -batch and the pwcetd analysis service
// (internal/serve). Both front ends parse the same wire format with the
// same validation and expand it to the same query grid — benchmarks
// outermost, then pfails x mechanisms x targets — so a sweep streamed
// by the service is byte-identical, row for row, to the same sweep run
// through the CLI.
//
// The specification is a single JSON object:
//
//	{
//	  "benchmarks": ["adpcm", "crc"],          // omitted = whole suite
//	  "pfails": [1e-6, 1e-5, 1e-4, 1e-3],      // required, non-empty
//	  "mechanisms": ["none", "rw", "srb"],     // omitted = all three
//	  "targets": [1e-15],                      // omitted = [1e-15]
//	  "cache": {"sets": 16, "ways": 4, "block_bytes": 16,
//	            "hit_latency": 1, "mem_latency": 100}, // omitted = paper cache
//	  "max_support": 4096,                     // omitted = default
//	  "coarsen": "least-error",                // or "keep-heaviest"
//	  "exact_convolve": false,                 // exact convolution fold
//	  "workers": 0                             // 0/omitted = caller's default
//	}
package batchspec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/malardalen"
)

// Cache is the JSON wire form of a cache geometry, with the stable
// field names of the -batch specification and the pwcet JSON reports.
type Cache struct {
	Sets       int   `json:"sets"`
	Ways       int   `json:"ways"`
	BlockBytes int   `json:"block_bytes"`
	HitLatency int64 `json:"hit_latency"`
	MemLatency int64 `json:"mem_latency"`
}

// Config converts the wire form to the analysis configuration.
func (c Cache) Config() cache.Config {
	return cache.Config{Sets: c.Sets, Ways: c.Ways, BlockBytes: c.BlockBytes,
		HitLatency: c.HitLatency, MemLatency: c.MemLatency}
}

// FromConfig converts an analysis configuration to the wire form.
func FromConfig(c cache.Config) Cache {
	return Cache{Sets: c.Sets, Ways: c.Ways, BlockBytes: c.BlockBytes,
		HitLatency: c.HitLatency, MemLatency: c.MemLatency}
}

// specJSON is the wire format of the sweep specification.
type specJSON struct {
	Benchmarks    []string  `json:"benchmarks"`
	Pfails        []float64 `json:"pfails"`
	Mechanisms    []string  `json:"mechanisms"`
	Targets       []float64 `json:"targets"`
	Cache         *Cache    `json:"cache"`
	MaxSupport    int       `json:"max_support"`
	Coarsen       string    `json:"coarsen"`
	ExactConvolve bool      `json:"exact_convolve"`
	Workers       int       `json:"workers"`
}

// Spec is a parsed and validated sweep specification. Every field is
// fully resolved: defaults applied, names verified, enums parsed.
type Spec struct {
	// Benchmarks are the suite benchmarks to sweep, in specification
	// order (the whole suite when the spec omitted them).
	Benchmarks []string
	// Pfails, Mechanisms and Targets span the per-benchmark query grid,
	// expanded in that nesting order by Queries.
	Pfails     []float64
	Mechanisms []cache.Mechanism
	Targets    []float64
	// Cache is the geometry of every query; the zero value selects the
	// engine default (the paper cache).
	Cache cache.Config
	// MaxSupport and Coarsen configure the convolution support cap.
	MaxSupport int
	Coarsen    dist.CoarsenStrategy
	// ExactConvolve routes every query through the exact convolution
	// fold (EngineOptions.ExactConvolve) — the differential escape
	// hatch for validating the optimized reduction.
	ExactConvolve bool
	// Workers is the worker-pool bound for the sweep's engines; 0
	// defers to the caller (the -workers flag or the server default).
	Workers int
}

// Parse decodes and validates a sweep specification. Unknown fields,
// trailing data and out-of-domain values are rejected with errors that
// name the offending field.
func Parse(r io.Reader) (*Spec, error) {
	var wire specJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the specification object")
	}

	if len(wire.Pfails) == 0 {
		return nil, fmt.Errorf("pfails must be non-empty")
	}
	for _, pf := range wire.Pfails {
		if pf < 0 || pf > 1 || math.IsNaN(pf) {
			return nil, fmt.Errorf("pfail %g outside [0,1]", pf)
		}
	}
	spec := &Spec{
		Benchmarks:    wire.Benchmarks,
		Pfails:        wire.Pfails,
		Targets:       wire.Targets,
		MaxSupport:    wire.MaxSupport,
		ExactConvolve: wire.ExactConvolve,
		Workers:       wire.Workers,
	}
	if len(spec.Targets) == 0 {
		spec.Targets = []float64{core.DefaultTargetExceedance}
	}
	for _, tg := range spec.Targets {
		if tg <= 0 || tg >= 1 || math.IsNaN(tg) {
			return nil, fmt.Errorf("target %g outside (0,1)", tg)
		}
	}
	if wire.Cache != nil {
		spec.Cache = wire.Cache.Config()
		if err := spec.Cache.Validate(); err != nil {
			return nil, err
		}
	}
	if spec.MaxSupport != 0 && spec.MaxSupport < 2 {
		return nil, fmt.Errorf("max_support %d: need at least 2 support points (or 0 for the default)", spec.MaxSupport)
	}
	if wire.Coarsen != "" {
		s, err := dist.ParseCoarsenStrategy(wire.Coarsen)
		if err != nil {
			return nil, err
		}
		spec.Coarsen = s
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("workers %d is negative (0 means the caller's default)", spec.Workers)
	}
	if len(spec.Benchmarks) == 0 {
		spec.Benchmarks = malardalen.Names()
	}
	for _, name := range spec.Benchmarks {
		if _, err := malardalen.Get(name); err != nil {
			return nil, err
		}
	}
	if len(wire.Mechanisms) == 0 {
		wire.Mechanisms = []string{"none", "rw", "srb"}
	}
	spec.Mechanisms = make([]cache.Mechanism, len(wire.Mechanisms))
	for i, s := range wire.Mechanisms {
		m, err := cache.ParseMechanism(s)
		if err != nil {
			return nil, err
		}
		spec.Mechanisms[i] = m
	}
	return spec, nil
}

// Queries expands the per-benchmark query grid in the canonical order:
// pfails outermost, then mechanisms, then targets. Every benchmark of
// the sweep runs this same grid on its own engine.
func (s *Spec) Queries() []core.Query {
	queries := make([]core.Query, 0, len(s.Pfails)*len(s.Mechanisms)*len(s.Targets))
	for _, pf := range s.Pfails {
		for _, m := range s.Mechanisms {
			for _, tg := range s.Targets {
				queries = append(queries, core.Query{
					Cache:            s.Cache,
					Pfail:            pf,
					Mechanism:        m,
					TargetExceedance: tg,
					MaxSupport:       s.MaxSupport,
					Coarsen:          s.Coarsen,
				})
			}
		}
	}
	return queries
}

// EngineOptions returns the engine configuration the sweep's queries
// assume. workers is the caller's default worker bound, used when the
// specification left its own workers field at 0.
func (s *Spec) EngineOptions(workers int) core.EngineOptions {
	if s.Workers != 0 {
		workers = s.Workers
	}
	return core.EngineOptions{Workers: workers, ExactConvolve: s.ExactConvolve}
}

// NumRows is the total number of result rows the sweep produces.
func (s *Spec) NumRows() int {
	return len(s.Benchmarks) * len(s.Pfails) * len(s.Mechanisms) * len(s.Targets)
}

// Row is one sweep point's outcome — the JSON row format of
// cmd/pwcet -batch -json and of the service's NDJSON stream. The field
// set and order are part of the byte-identity contract between the two
// front ends.
type Row struct {
	Benchmark     string  `json:"benchmark"`
	Pfail         float64 `json:"pfail"`
	Mechanism     string  `json:"mechanism"`
	Target        float64 `json:"target"`
	FaultFreeWCET int64   `json:"fault_free_wcet"`
	PWCET         int64   `json:"pwcet"`
}

// RowOf builds the row of one (benchmark, query) sweep point.
func RowOf(benchmark string, q core.Query, r *core.Result) Row {
	return Row{
		Benchmark:     benchmark,
		Pfail:         q.Pfail,
		Mechanism:     q.Mechanism.String(),
		Target:        q.TargetExceedance,
		FaultFreeWCET: r.FaultFreeWCET,
		PWCET:         r.PWCET,
	}
}

// Rows converts one benchmark's batch results, in Queries order, to
// rows.
func Rows(benchmark string, queries []core.Query, results []*core.Result) []Row {
	rows := make([]Row, len(results))
	for i, r := range results {
		rows[i] = RowOf(benchmark, queries[i], r)
	}
	return rows
}
