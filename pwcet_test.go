package pwcet_test

import (
	"testing"

	pwcet "repro"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow.
func TestPublicAPIQuickstart(t *testing.T) {
	b := pwcet.NewProgram("api")
	b.Func("main").Loop(100, func(l *pwcet.Body) { l.Ops(12) })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.RW})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultFreeWCET <= 0 || res.PWCET < res.FaultFreeWCET {
		t.Errorf("implausible WCETs: fault-free %d, pWCET %d", res.FaultFreeWCET, res.PWCET)
	}
	if res.Options.Cache != pwcet.PaperCache() {
		t.Error("default cache is not the paper configuration")
	}
}

// TestSuiteAvailable checks the 25-benchmark suite is reachable through
// the public API.
func TestSuiteAvailable(t *testing.T) {
	names := pwcet.Benchmarks()
	if len(names) != 25 {
		t.Fatalf("%d benchmarks, want 25", len(names))
	}
	p, err := pwcet.Benchmark("matmult")
	if err != nil || p.Name != "matmult" {
		t.Fatalf("Benchmark(matmult) = %v, %v", p, err)
	}
	if _, err := pwcet.Benchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestPaperShape asserts the qualitative findings of Section IV.B on the
// full suite — the properties the paper's Figure 4 demonstrates:
//
//  1. for every benchmark, fault-free WCET <= pWCET(RW) <= pWCET(SRB)
//     <= pWCET(none);
//  2. all four behaviour categories occur;
//  3. the average gains are large (paper: RW 48%, SRB 40%); we assert
//     a generous band since the substrate differs;
//  4. protection gains are strictly positive everywhere (the paper's
//     "for all benchmarks ... significantly lower pWCETs").
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	var sumRW, sumSRB float64
	categories := map[int]int{}
	for _, name := range pwcet.Benchmarks() {
		p, err := pwcet.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]

		if rw.FaultFreeWCET != none.FaultFreeWCET || srb.FaultFreeWCET != none.FaultFreeWCET {
			t.Errorf("%s: fault-free WCET differs across mechanisms", name)
		}
		if !(none.FaultFreeWCET <= rw.PWCET && rw.PWCET <= srb.PWCET && srb.PWCET <= none.PWCET) {
			t.Errorf("%s: ordering violated: ff %d, rw %d, srb %d, none %d",
				name, none.FaultFreeWCET, rw.PWCET, srb.PWCET, none.PWCET)
		}
		gRW, gSRB := pwcet.Gain(none, rw), pwcet.Gain(none, srb)
		if gRW <= 0 || gSRB <= 0 {
			t.Errorf("%s: non-positive gain (rw %.3f, srb %.3f)", name, gRW, gSRB)
		}
		if gRW+1e-12 < gSRB {
			t.Errorf("%s: RW gain %.3f below SRB gain %.3f", name, gRW, gSRB)
		}
		sumRW += gRW
		sumSRB += gSRB

		switch {
		case rw.PWCET == none.FaultFreeWCET && srb.PWCET == none.FaultFreeWCET:
			categories[1]++
		case rw.PWCET == none.FaultFreeWCET:
			categories[2]++
		case gRW-gSRB < 0.02:
			categories[3]++
		default:
			categories[4]++
		}
	}
	n := float64(len(pwcet.Benchmarks()))
	avgRW, avgSRB := sumRW/n, sumSRB/n
	t.Logf("average gains: RW %.1f%% (paper 48%%), SRB %.1f%% (paper 40%%)", 100*avgRW, 100*avgSRB)
	t.Logf("categories: %v", categories)
	if avgRW < 0.30 || avgRW > 0.75 {
		t.Errorf("average RW gain %.1f%% far from the paper's 48%%", 100*avgRW)
	}
	if avgSRB < 0.25 || avgSRB > 0.65 {
		t.Errorf("average SRB gain %.1f%% far from the paper's 40%%", 100*avgSRB)
	}
	if avgRW <= avgSRB {
		t.Errorf("average RW gain %.3f not above SRB %.3f", avgRW, avgSRB)
	}
	for c := 1; c <= 4; c++ {
		if categories[c] == 0 {
			t.Errorf("category %d empty — Figure 4 shows all four", c)
		}
	}
}

// TestFig3Shape asserts the qualitative content of Figure 3: the three
// exceedance curves of adpcm are ordered RW <= SRB <= none at every
// probed probability, and the unprotected pWCET at 1e-15 is far above
// the fault-free WCET (the motivation for the paper).
func TestFig3Shape(t *testing.T) {
	p, err := pwcet.Benchmark("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
	for _, prob := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
		vNone, vRW, vSRB := none.PWCETAt(prob), rw.PWCETAt(prob), srb.PWCETAt(prob)
		if !(vRW <= vSRB && vSRB <= vNone) {
			t.Errorf("at %g: rw %d, srb %d, none %d not ordered", prob, vRW, vSRB, vNone)
		}
	}
	if float64(none.PWCET) < 2*float64(none.FaultFreeWCET) {
		t.Errorf("unprotected pWCET %d not significantly above fault-free %d",
			none.PWCET, none.FaultFreeWCET)
	}
}

// TestValidatePublicAPI runs the Monte-Carlo soundness check through the
// facade.
func TestValidatePublicAPI(t *testing.T) {
	p, err := pwcet.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pwcet.Analyze(p, pwcet.Options{Pfail: 2e-3, Mechanism: pwcet.SRB})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pwcet.Validate(p, res, 50, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundViolations != 0 || rep.CCDFViolations != 0 {
		t.Errorf("soundness violations: %d bound, %d ccdf", rep.BoundViolations, rep.CCDFViolations)
	}
}

// TestPBFPublic checks equation 1 through the facade at the paper's
// roadmap values.
func TestPBFPublic(t *testing.T) {
	if p := pwcet.PBF(1e-4, 128); p < 0.0127 || p > 0.0128 {
		t.Errorf("PBF(1e-4, 128) = %g, want ~0.0127", p)
	}
}
